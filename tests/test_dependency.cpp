// Dependency manager: transitive closure, cycle prevention, FindOrder.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dependency.hpp"

namespace manthan::core {
namespace {

std::size_t position_of(const std::vector<std::size_t>& order,
                        std::size_t value) {
  return static_cast<std::size_t>(
      std::find(order.begin(), order.end(), value) - order.begin());
}

TEST(DependencyManager, InitiallyIndependent) {
  DependencyManager d(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FALSE(d.depends_on(i, j));
      EXPECT_EQ(d.can_use(i, j), i != j);
    }
  }
}

TEST(DependencyManager, RecordUseCreatesDependency) {
  DependencyManager d(3);
  d.record_use(0, 1);  // y0 uses y1
  EXPECT_TRUE(d.depends_on(0, 1));
  EXPECT_FALSE(d.depends_on(1, 0));
  // y1 may no longer use y0 (cycle).
  EXPECT_FALSE(d.can_use(1, 0));
  // Unrelated pairs unaffected.
  EXPECT_TRUE(d.can_use(0, 2));
  EXPECT_TRUE(d.can_use(2, 0));
}

TEST(DependencyManager, TransitiveClosureMaintained) {
  DependencyManager d(4);
  d.record_use(0, 1);  // y0 -> y1
  d.record_use(1, 2);  // y1 -> y2; hence y0 -> y2
  EXPECT_TRUE(d.depends_on(0, 2));
  EXPECT_FALSE(d.can_use(2, 0));
  EXPECT_FALSE(d.can_use(2, 1));
  // Adding y2 -> y3 propagates to everything upstream.
  d.record_use(2, 3);
  EXPECT_TRUE(d.depends_on(0, 3));
  EXPECT_TRUE(d.depends_on(1, 3));
  EXPECT_FALSE(d.can_use(3, 0));
}

TEST(DependencyManager, ClosureWhenDependentAddedLate) {
  DependencyManager d(3);
  d.record_use(1, 2);  // y1 -> y2
  d.record_use(0, 1);  // y0 -> y1 must inherit y0 -> y2
  EXPECT_TRUE(d.depends_on(0, 2));
}

TEST(DependencyManager, FindOrderRespectsDependencies) {
  DependencyManager d(4);
  d.record_use(0, 1);
  d.record_use(1, 3);
  d.record_use(2, 3);
  const std::vector<std::size_t> order = d.find_order();
  ASSERT_EQ(order.size(), 4u);
  // Dependent must come before its dependency.
  EXPECT_LT(position_of(order, 0), position_of(order, 1));
  EXPECT_LT(position_of(order, 1), position_of(order, 3));
  EXPECT_LT(position_of(order, 2), position_of(order, 3));
}

TEST(DependencyManager, FindOrderIsPermutation) {
  DependencyManager d(5);
  d.record_use(3, 0);
  d.record_use(4, 2);
  std::vector<std::size_t> order = d.find_order();
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(DependencyManager, FindOrderDeterministic) {
  DependencyManager a(4);
  DependencyManager b(4);
  a.record_use(2, 1);
  b.record_use(2, 1);
  EXPECT_EQ(a.find_order(), b.find_order());
}

TEST(DependencyManager, EmptyManagerOrder) {
  DependencyManager d(0);
  EXPECT_TRUE(d.find_order().empty());
}

TEST(DependencyManager, DiamondDependencies) {
  // y0 -> y1 -> y3, y0 -> y2 -> y3.
  DependencyManager d(4);
  d.record_use(0, 1);
  d.record_use(0, 2);
  d.record_use(1, 3);
  d.record_use(2, 3);
  EXPECT_TRUE(d.depends_on(0, 3));
  const auto order = d.find_order();
  EXPECT_EQ(position_of(order, 0), 0u);
  EXPECT_EQ(position_of(order, 3), 3u);
}

}  // namespace
}  // namespace manthan::core
