// Observability subsystem: metrics registry semantics, concurrent
// registry/tracing use (the TSan job runs this binary), Chrome-trace JSON
// well-formedness and span nesting, and the contract that telemetry never
// perturbs the engine's deterministic seed streams.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "core/manthan3.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workloads/workloads.hpp"

namespace manthan::obs {
namespace {

// ---- minimal JSON reader -------------------------------------------------
// Just enough to parse what write_trace_json and Registry::to_json emit:
// objects, arrays, strings (with the escapes json_escape produces),
// numbers, and literals. Failing to parse is a test failure by itself.
struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json& at(const std::string& key) const {
    static const Json missing;
    const auto it = fields.find(key);
    return it != fields.end() ? it->second : missing;
  }
  bool has(const std::string& key) const { return fields.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(Json& out) { return value(out) && (skip_ws(), pos_ == text_.size()); }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string_value(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::kObject;
      skip_ws();
      if (consume('}')) return true;
      do {
        std::string key;
        if (!string_value(key) || !consume(':')) return false;
        Json child;
        if (!value(child)) return false;
        out.fields.emplace(std::move(key), std::move(child));
      } while (consume(','));
      return consume('}');
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::kArray;
      skip_ws();
      if (consume(']')) return true;
      do {
        Json child;
        if (!value(child)) return false;
        out.items.push_back(std::move(child));
      } while (consume(','));
      return consume(']');
    }
    if (c == '"') {
      out.kind = Json::kString;
      return string_value(out.text);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = Json::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = Json::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out.kind = Json::kNumber;
    out.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- registry ------------------------------------------------------------

TEST(Metrics, CountersGaugesHistogramsRoundTrip) {
  Registry r;
  Counter& c = r.counter("test_requests_total");
  c.inc();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Find-or-create: the same name returns the same instrument.
  r.counter("test_requests_total").inc();
  EXPECT_EQ(c.value(), 6u);

  Gauge& g = r.gauge("test_bytes");
  g.set(128.0);
  g.add(64.0);
  EXPECT_DOUBLE_EQ(g.value(), 192.0);
  g.update_max(100.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 192.0);
  g.update_max(1000.0);
  EXPECT_DOUBLE_EQ(g.value(), 1000.0);

  Histogram& h = r.histogram("test_seconds");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);

  // A name registered as one kind cannot be re-registered as another.
  EXPECT_THROW(r.gauge("test_requests_total"), std::logic_error);
  EXPECT_THROW(r.counter("test_seconds"), std::logic_error);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  Registry r;
  Histogram& h = r.histogram("test_hist");
  // 0.75 lands in the bucket with upper bound 1.0 = 2^0.
  h.observe(0.75);
  std::uint64_t total = 0;
  bool seen_in_unit_bucket = false;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.bucket(i);
    if (h.bucket(i) != 0) {
      seen_in_unit_bucket = Histogram::bucket_bound(i) == 1.0;
    }
  }
  EXPECT_EQ(total, 1u);
  EXPECT_TRUE(seen_in_unit_bucket);
}

TEST(Metrics, SnapshotAndExposition) {
  Registry r;
  r.counter("exp_total").add(7);
  r.gauge("exp_gauge").set(2.5);
  r.histogram("exp_seconds").observe(0.1);
  r.register_callback_gauge("exp_callback", [] { return 42.0; });

  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "exp_total");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 2u);  // gauge + callback, sorted by name

  const std::string prom = r.to_prometheus();
  EXPECT_NE(prom.find("# TYPE exp_total counter"), std::string::npos);
  EXPECT_NE(prom.find("exp_total 7"), std::string::npos);
  EXPECT_NE(prom.find("exp_gauge 2.5"), std::string::npos);
  EXPECT_NE(prom.find("exp_callback 42"), std::string::npos);
  EXPECT_NE(prom.find("exp_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("exp_seconds_count 1"), std::string::npos);

  // The JSON snapshot parses and carries the same counter.
  Json parsed;
  ASSERT_TRUE(JsonParser(r.to_json()).parse(parsed));
  ASSERT_EQ(parsed.kind, Json::kObject);
  EXPECT_DOUBLE_EQ(parsed.at("counters").at("exp_total").number, 7.0);
}

TEST(Metrics, ProcessMetricsAreRegisteredGlobally) {
  const std::string prom = Registry::global().to_prometheus();
  EXPECT_NE(prom.find("process_peak_rss_bytes"), std::string::npos);
  EXPECT_GT(peak_rss_bytes(), 0u);
  EXPECT_GT(current_rss_bytes(), 0u);
}

// The TSan job runs this: writers on every instrument kind race against
// snapshot/export readers; any missing synchronization is a data race.
TEST(Metrics, ConcurrentRegistryIsRaceFree) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, &go, t] {
      while (!go.load()) {
      }
      Counter& c = r.counter("conc_total");
      Gauge& g = r.gauge("conc_gauge");
      Histogram& h = r.histogram("conc_seconds");
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.update_max(static_cast<double>(t * kIters + i));
        h.observe(0.001 * static_cast<double>(i + 1));
        if (i % 256 == 0) {
          // Readers race the writers: snapshot must see a consistent map.
          const MetricsSnapshot snap = r.snapshot();
          EXPECT_LE(snap.counters.size(), 4u);
        }
      }
    });
  }
  go.store(true);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(r.counter("conc_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(r.histogram("conc_seconds").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(r.gauge("conc_gauge").value(),
                   static_cast<double>(kThreads * kIters - 1));
}

TEST(Trace, ConcurrentSpansAndLiveWritesAreRaceFree) {
  start_tracing();
  constexpr int kThreads = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go] {
      while (!go.load()) {
      }
      for (int i = 0; i < 500; ++i) {
        Span span("test.work", "test", 0xabcdef);
        trace_instant("test.tick", "test");
      }
    });
  }
  go.store(true);
  // Live snapshot while workers record: the daemon does exactly this on
  // every drain cycle.
  for (int i = 0; i < 20; ++i) {
    std::ostringstream out;
    write_trace_json(out);
  }
  for (std::thread& w : workers) w.join();
  stop_tracing();
  EXPECT_GE(trace_event_count(), static_cast<std::size_t>(kThreads) * 1000);
  clear_trace();
}

// ---- trace output over a real synthesis run ------------------------------

core::SynthesisResult traced_run(std::uint64_t seed, std::size_t workers,
                                 std::uint64_t trace_id) {
  // Multi-round planted family (micro_core's shape): the PR-5 front end
  // is pinned off so verification produces counterexamples and the trace
  // shows verify/repair/maxsat rounds, not just a round-0 certificate.
  workloads::PlantedParams params;
  params.num_universals = 12;
  params.num_existentials = 6;
  params.dep_size = 4;
  params.function_gates = 6;
  params.num_clauses = 80;
  params.seed = 7;
  params.nested_deps = true;
  params.dep_size_max = 10;
  const dqbf::DqbfFormula formula = workloads::gen_planted(params);
  aig::Aig manager;
  core::Manthan3Options options;
  options.time_limit_seconds = 120.0;
  options.max_counterexamples = 300;
  options.sampler.enumerate = false;
  options.seed = seed;
  options.learn_workers = workers;
  options.trace_id = trace_id;
  return core::Manthan3(options).synthesize(formula, manager);
}

TEST(Trace, ChromeTraceIsWellFormedAndNested) {
  start_tracing();
  const core::SynthesisResult result = traced_run(42, 1, 0x5eedf00d);
  stop_tracing();
  // The planted-hard family is not guaranteed to converge within the
  // budget; the trace only needs a run that went through repair rounds.
  ASSERT_GT(result.stats.counterexamples, 0u);

  std::ostringstream out;
  write_trace_json(out);
  clear_trace();

  Json trace;
  ASSERT_TRUE(JsonParser(out.str()).parse(trace)) << out.str().substr(0, 400);
  ASSERT_EQ(trace.kind, Json::kObject);
  const Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArray);
  ASSERT_FALSE(events.items.empty());

  std::set<std::string> names;
  const Json* synthesize = nullptr;
  for (const Json& e : events.items) {
    ASSERT_EQ(e.kind, Json::kObject);
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (e.at("ph").text == "X") {
      ASSERT_TRUE(e.has("dur"));
    }
    names.insert(e.at("name").text);
    if (e.at("name").text == "synthesize") synthesize = &e;
  }
  // The acceptance bar: at least 6 distinct pipeline phases in one run.
  const std::set<std::string> phases = {
      "synthesize", "sample",  "sample.probe", "sample.main",
      "unique_def", "learn",   "verify.round", "extend",
      "maxsat.round", "repair", "refit",       "inprocess",
      "substitute"};
  std::size_t distinct = 0;
  for (const std::string& n : names) distinct += phases.count(n);
  EXPECT_GE(distinct, 6u) << "phases seen: " << names.size();

  // Span nesting: every phase span on the synthesize thread lies inside
  // the synthesize span's [ts, ts+dur] interval.
  ASSERT_NE(synthesize, nullptr);
  const double run_begin = synthesize->at("ts").number;
  const double run_end = run_begin + synthesize->at("dur").number;
  const double run_tid = synthesize->at("tid").number;
  std::size_t nested = 0;
  for (const Json& e : events.items) {
    const std::string& n = e.at("name").text;
    if (n == "synthesize" || e.at("ph").text != "X") continue;
    if (e.at("tid").number != run_tid) continue;
    if (phases.count(n) == 0) continue;
    const double begin = e.at("ts").number;
    const double end = begin + e.at("dur").number;
    EXPECT_GE(begin, run_begin) << n;
    EXPECT_LE(end, run_end + 1e-3) << n;
    ++nested;
  }
  EXPECT_GT(nested, 0u);

  // Spans carry the caller's trace id (hex in args).
  bool tagged = false;
  for (const Json& e : events.items) {
    if (e.has("args") && e.at("args").has("trace_id")) {
      EXPECT_EQ(e.at("args").at("trace_id").text, "000000005eedf00d");
      tagged = true;
    }
  }
  EXPECT_TRUE(tagged);
}

// ---- determinism: telemetry is an observer, not a participant ------------

void expect_same_trajectory(const core::SynthesisStats& a,
                            const core::SynthesisStats& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.unique_defined, b.unique_defined);
  EXPECT_EQ(a.learned_candidates, b.learned_candidates);
  EXPECT_EQ(a.counterexamples, b.counterexamples);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.repair_checks, b.repair_checks);
  EXPECT_EQ(a.maxsat_calls, b.maxsat_calls);
  EXPECT_EQ(a.cones_encoded, b.cones_encoded);
  EXPECT_EQ(a.aig_nodes_encoded, b.aig_nodes_encoded);
  EXPECT_EQ(a.aig_nodes, b.aig_nodes);
}

TEST(Trace, TracingDoesNotPerturbSynthesis) {
  // Cold (tracing off) vs warm (tracing on): identical derive_seed
  // streams, so every per-round counter must match field for field.
  const core::SynthesisResult off = traced_run(42, 1, 0);
  start_tracing();
  const core::SynthesisResult on = traced_run(42, 1, 0x1234);
  stop_tracing();
  clear_trace();
  EXPECT_EQ(off.status, on.status);
  expect_same_trajectory(off.stats, on.stats);
}

TEST(Trace, ParallelLearningMatchesSerialUnderTracing) {
  start_tracing();
  const core::SynthesisResult serial = traced_run(42, 1, 0x77);
  const core::SynthesisResult parallel = traced_run(42, 4, 0x77);
  stop_tracing();
  clear_trace();
  EXPECT_EQ(serial.status, parallel.status);
  expect_same_trajectory(serial.stats, parallel.stats);
}

TEST(Files, WriteFileAtomicReplacesContent) {
  const std::string path = "test_obs_atomic.txt";
  ASSERT_TRUE(write_file_atomic(path, "first\n"));
  ASSERT_TRUE(write_file_atomic(path, "second\n"));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "second");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace manthan::obs
