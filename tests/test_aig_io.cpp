// Netlist writers: BLIF and Verilog output structure and semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_io.hpp"

namespace manthan::aig {
namespace {

TEST(AigIo, BlifStructure) {
  Aig m;
  const Ref a = m.input(0);  // created first: deterministic node order
  const Ref b = m.input(1);
  const Ref f = m.and_gate(a, ref_not(b));
  std::ostringstream os;
  write_blif(os, m, "test", {{"out", f}});
  const std::string text = os.str();
  EXPECT_NE(text.find(".model test"), std::string::npos);
  EXPECT_NE(text.find(".inputs"), std::string::npos);
  EXPECT_NE(text.find("x0"), std::string::npos);
  EXPECT_NE(text.find("x1"), std::string::npos);
  EXPECT_NE(text.find(".outputs out"), std::string::npos);
  EXPECT_NE(text.find("10 1"), std::string::npos);  // a & ~b cover
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(AigIo, BlifComplementedOutput) {
  Aig m;
  const Ref f = ref_not(m.input(0));
  std::ostringstream os;
  write_blif(os, m, "inv", {{"out", f}});
  const std::string text = os.str();
  // Inverted driver cover "0 1".
  EXPECT_NE(text.find("0 1"), std::string::npos);
}

TEST(AigIo, BlifConstantOutput) {
  Aig m;
  std::ostringstream os;
  write_blif(os, m, "const", {{"zero", kFalseRef}, {"one", kTrueRef}});
  const std::string text = os.str();
  EXPECT_NE(text.find(".names const0"), std::string::npos);
  EXPECT_NE(text.find(".outputs zero one"), std::string::npos);
}

TEST(AigIo, VerilogStructure) {
  Aig m;
  const Ref f = m.or_gate(m.input(0), m.input(2));
  std::ostringstream os;
  write_verilog(os, m, "mymod", {{"out", f}});
  const std::string text = os.str();
  EXPECT_NE(text.find("module mymod("), std::string::npos);
  EXPECT_NE(text.find("input x0;"), std::string::npos);
  EXPECT_NE(text.find("input x2;"), std::string::npos);
  EXPECT_NE(text.find("output out;"), std::string::npos);
  EXPECT_NE(text.find("assign out ="), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(AigIo, VerilogSemanticsByHandEvaluation) {
  // or = ~(~a & ~b): the single AND node computes ~a & ~b and the output
  // is its complement.
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref f = m.or_gate(a, b);
  std::ostringstream os;
  write_verilog(os, m, "orgate", {{"o", f}});
  const std::string text = os.str();
  // One internal wire, complement on both fanins.
  EXPECT_NE(text.find("~x0 & ~x1"), std::string::npos);
  EXPECT_NE(text.find("assign o = ~n"), std::string::npos);
}

TEST(AigIo, SharedNodesEmittedOnce) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref shared = m.and_gate(a, b);
  const Ref f = m.and_gate(shared, m.input(2));
  const Ref g = m.and_gate(shared, m.input(3));
  std::ostringstream os;
  write_blif(os, m, "shared", {{"f", f}, {"g", g}});
  const std::string text = os.str();
  // The shared node's definition appears exactly once.
  const std::string needle = ".names x0 x1";
  const std::size_t first = text.find(needle);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(needle, first + 1), std::string::npos);
}

}  // namespace
}  // namespace manthan::aig
