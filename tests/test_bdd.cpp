// ROBDD engine: canonicity, operation semantics vs truth tables,
// quantification, composition, counting, and the AIG bridge.
#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"
#include "cnf/cnf.hpp"
#include "util/rng.hpp"

namespace manthan::bdd {
namespace {

TEST(Bdd, TerminalsAndLiterals) {
  Bdd b;
  EXPECT_EQ(b.constant(true), kTrueNode);
  EXPECT_EQ(b.constant(false), kFalseNode);
  const NodeId x = b.var_node(0);
  EXPECT_EQ(b.not_op(b.not_op(x)), x);
  EXPECT_EQ(b.literal(0, true), x);
  EXPECT_EQ(b.not_op(x), b.literal(0, false));
}

TEST(Bdd, CanonicityViaHashConsing) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  // (x & y) built two different ways must be the same node.
  const NodeId a1 = b.and_op(x, y);
  const NodeId a2 = b.not_op(b.or_op(b.not_op(x), b.not_op(y)));
  EXPECT_EQ(a1, a2);
  // x xor y == (x & !y) | (!x & y)
  const NodeId x1 = b.xor_op(x, y);
  const NodeId x2 = b.or_op(b.and_op(x, b.not_op(y)),
                            b.and_op(b.not_op(x), y));
  EXPECT_EQ(x1, x2);
}

TEST(Bdd, EvaluateAgreesWithSemantics) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  const NodeId z = b.var_node(2);
  const NodeId f = b.ite(x, y, z);
  for (int bits = 0; bits < 8; ++bits) {
    std::unordered_map<std::int32_t, bool> in{
        {0, (bits & 1) != 0}, {1, (bits & 2) != 0}, {2, (bits & 4) != 0}};
    EXPECT_EQ(b.evaluate(f, in), in[0] ? in[1] : in[2]);
  }
}

TEST(Bdd, TautologyIsTrueNode) {
  Bdd b;
  const NodeId x = b.var_node(0);
  EXPECT_EQ(b.or_op(x, b.not_op(x)), kTrueNode);
  EXPECT_EQ(b.and_op(x, b.not_op(x)), kFalseNode);
}

TEST(Bdd, ExistsCollapsesVariable) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  const NodeId f = b.and_op(x, y);
  EXPECT_EQ(b.exists(f, {0}), y);
  EXPECT_EQ(b.exists(f, {0, 1}), kTrueNode);
  EXPECT_EQ(b.forall(f, {0}), kFalseNode);
  const NodeId g = b.or_op(x, y);
  EXPECT_EQ(b.forall(g, {0}), y);
}

TEST(Bdd, RestrictMatchesCofactor) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  const NodeId f = b.xor_op(x, y);
  EXPECT_EQ(b.restrict_var(f, 0, true), b.not_op(y));
  EXPECT_EQ(b.restrict_var(f, 0, false), y);
}

TEST(Bdd, ComposeSemantics) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  const NodeId z = b.var_node(2);
  // f = x & y; x := (y | z)  =>  (y|z) & y == y
  const NodeId f = b.and_op(x, y);
  EXPECT_EQ(b.compose(f, 0, b.or_op(y, z)), y);
}

TEST(Bdd, SupportListsVariables) {
  Bdd b;
  b.declare_order({4, 2, 9});
  const NodeId f = b.and_op(b.var_node(4), b.xor_op(b.var_node(2),
                                                    b.var_node(9)));
  // Support is reported in level (declaration) order.
  EXPECT_EQ(b.support(f), (std::vector<std::int32_t>{4, 2, 9}));
  EXPECT_TRUE(b.support(kTrueNode).empty());
}

TEST(Bdd, SatCount) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  EXPECT_DOUBLE_EQ(b.sat_count(b.and_op(x, y), 2), 1.0);
  EXPECT_DOUBLE_EQ(b.sat_count(b.or_op(x, y), 2), 3.0);
  EXPECT_DOUBLE_EQ(b.sat_count(b.xor_op(x, y), 2), 2.0);
  EXPECT_DOUBLE_EQ(b.sat_count(kTrueNode, 2), 4.0);
  EXPECT_DOUBLE_EQ(b.sat_count(kFalseNode, 2), 0.0);
  // Extra unconstrained variables double the count.
  EXPECT_DOUBLE_EQ(b.sat_count(b.and_op(x, y), 4), 4.0);
}

TEST(Bdd, PickModelSatisfies) {
  Bdd b;
  const NodeId x = b.var_node(0);
  const NodeId y = b.var_node(1);
  const NodeId f = b.and_op(b.not_op(x), y);
  std::unordered_map<std::int32_t, bool> model;
  ASSERT_TRUE(b.pick_model(f, model));
  EXPECT_TRUE(b.evaluate(f, model));
  EXPECT_FALSE(b.pick_model(kFalseNode, model));
}

TEST(Bdd, FromCnfSemantics) {
  cnf::CnfFormula f(3);
  f.add_clause({cnf::pos(0), cnf::neg(1)});
  f.add_clause({cnf::pos(1), cnf::pos(2)});
  Bdd b;
  const NodeId node = b.from_cnf(f);
  for (int bits = 0; bits < 8; ++bits) {
    cnf::Assignment a(3);
    std::unordered_map<std::int32_t, bool> in;
    for (int v = 0; v < 3; ++v) {
      const bool value = ((bits >> v) & 1) != 0;
      a.set(v, value);
      in[v] = value;
    }
    EXPECT_EQ(b.evaluate(node, in), f.satisfied_by(a));
  }
}

TEST(Bdd, FromCnfLimitedAborts) {
  // A formula whose BDD has exponentially many nodes under the identity
  // order would exceed a tiny budget; use several xor constraints.
  cnf::CnfFormula f(12);
  for (int i = 0; i + 1 < 12; i += 2) {
    f.add_clause({cnf::pos(i), cnf::pos(i + 1)});
    f.add_clause({cnf::neg(i), cnf::neg(i + 1)});
  }
  Bdd b;
  EXPECT_FALSE(b.from_cnf_limited(f, 4).has_value());
  Bdd b2;
  EXPECT_TRUE(b2.from_cnf_limited(f, 100000).has_value());
}

TEST(Bdd, DagSizeCountsNodes) {
  Bdd b;
  const NodeId x = b.var_node(0);
  EXPECT_EQ(b.dag_size(kTrueNode), 1u);
  EXPECT_EQ(b.dag_size(x), 3u);  // node + two terminals
}

TEST(Bdd, DeclareOrderRespected) {
  Bdd b;
  b.declare_order({5, 3, 1});
  // Top variable of a conjunction is the first declared one.
  const NodeId f = b.and_op(b.var_node(1), b.var_node(5));
  EXPECT_EQ(b.var_of(f), 5);
}

TEST(BddAig, ConversionPreservesSemantics) {
  util::Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    // Random CNF -> BDD -> AIG; compare on all assignments.
    cnf::CnfFormula f(5);
    for (int c = 0; c < 8; ++c) {
      cnf::Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(cnf::Lit(
            static_cast<cnf::Var>(rng.next_below(5)), rng.flip()));
      }
      f.add_clause(clause);
    }
    Bdd b;
    const NodeId node = b.from_cnf(f);
    aig::Aig manager;
    const aig::Ref ref = bdd_to_aig(b, node, manager);
    for (int bits = 0; bits < 32; ++bits) {
      std::unordered_map<std::int32_t, bool> in;
      cnf::Assignment a(5);
      for (int v = 0; v < 5; ++v) {
        const bool value = ((bits >> v) & 1) != 0;
        in[v] = value;
        a.set(v, value);
      }
      EXPECT_EQ(manager.evaluate(ref, in), f.satisfied_by(a));
    }
  }
}

// Property: BDD ops agree with AIG simulation on random expressions.
TEST(BddProperty, RandomExpressionAgreement) {
  util::Rng rng(77);
  for (int round = 0; round < 15; ++round) {
    Bdd b;
    aig::Aig m;
    std::vector<NodeId> bp;
    std::vector<aig::Ref> ap;
    for (int i = 0; i < 5; ++i) {
      bp.push_back(b.var_node(i));
      ap.push_back(m.input(i));
    }
    for (int g = 0; g < 20; ++g) {
      const std::size_t i = rng.next_below(bp.size());
      const std::size_t j = rng.next_below(bp.size());
      switch (rng.next_below(3)) {
        case 0:
          bp.push_back(b.and_op(bp[i], bp[j]));
          ap.push_back(m.and_gate(ap[i], ap[j]));
          break;
        case 1:
          bp.push_back(b.or_op(bp[i], b.not_op(bp[j])));
          ap.push_back(m.or_gate(ap[i], aig::ref_not(ap[j])));
          break;
        default:
          bp.push_back(b.xor_op(bp[i], bp[j]));
          ap.push_back(m.xor_gate(ap[i], ap[j]));
          break;
      }
    }
    for (int bits = 0; bits < 32; ++bits) {
      std::unordered_map<std::int32_t, bool> in;
      for (int v = 0; v < 5; ++v) in[v] = ((bits >> v) & 1) != 0;
      EXPECT_EQ(b.evaluate(bp.back(), in), m.evaluate(ap.back(), in));
    }
  }
}

}  // namespace
}  // namespace manthan::bdd
