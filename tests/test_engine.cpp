// Parallel execution engine: thread-pool scheduler semantics, cooperative
// cancellation through the CancelToken/Deadline composition (SAT solver
// and synthesis engines stop mid-run with bounded extra work), and the
// racing portfolio (first certified result wins, losers are cancelled).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "test_util.hpp"
#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "engine/engine.hpp"
#include "engine/race.hpp"
#include "engine/scheduler.hpp"
#include "sat/solver.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"
#include "workloads/workloads.hpp"

namespace manthan::engine {
namespace {

using cnf::Var;

// --- CancelToken / Deadline composition ------------------------------------

TEST(CancelToken, StickyFlagAndReset) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ComposesWithUnlimitedDeadline) {
  util::CancelToken token;
  const util::Deadline deadline(0.0, &token);
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_seconds()));
  token.cancel();
  EXPECT_TRUE(deadline.expired());
  EXPECT_TRUE(deadline.cancelled());
  EXPECT_EQ(deadline.remaining_seconds(), 0.0);
}

TEST(CancelToken, TimeLimitStillExpiresWithoutCancel) {
  util::CancelToken token;
  const util::Deadline deadline(1e-9, &token);
  while (!deadline.expired()) {
  }
  EXPECT_TRUE(deadline.expired());
  EXPECT_FALSE(deadline.cancelled());
}

// --- Scheduler --------------------------------------------------------------

TEST(Scheduler, ReturnsResultsThroughFutures) {
  Scheduler pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(Scheduler, SingleWorkerRunsFifo) {
  std::vector<int> order;
  {
    Scheduler pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([i, &order]() { order.push_back(i); }));
    }
    for (auto& f : futures) f.get();
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, DestructorDrainsQueuedJobs) {
  std::atomic<int> done{0};
  {
    Scheduler pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done]() { done.fetch_add(1); });
    }
    // No get(): the destructor must still run every queued job.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(Scheduler, ExceptionsArriveThroughTheFuture) {
  Scheduler pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Scheduler, ZeroWorkersClampedToOne) {
  Scheduler pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

// --- cancellation of the SAT solver ----------------------------------------

/// Pigeonhole PHP(n+1, n): UNSAT and exponentially hard for CDCL —
/// guaranteed to still be running when the cancel lands.
cnf::CnfFormula pigeonhole(int holes) {
  const int pigeons = holes + 1;
  cnf::CnfFormula f(static_cast<Var>(pigeons * holes));
  const auto var = [holes](int pigeon, int hole) {
    return static_cast<Var>(pigeon * holes + hole);
  };
  for (int p = 0; p < pigeons; ++p) {
    cnf::Clause somewhere;
    for (int h = 0; h < holes; ++h) somewhere.push_back(cnf::pos(var(p, h)));
    f.add_clause(somewhere);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        f.add_clause({cnf::neg(var(p, h)), cnf::neg(var(q, h))});
      }
    }
  }
  return f;
}

TEST(Cancellation, PreCancelledTokenStopsSolverWithBoundedWork) {
  // Long implication chains: tens of thousands of propagations and zero
  // conflicts if the solve is allowed to run.
  sat::Solver solver;
  const int chains = 10;
  const int length = 1000;
  for (int c = 0; c < chains; ++c) {
    const Var base = static_cast<Var>(c * length);
    for (int i = 0; i + 1 < length; ++i) {
      solver.add_clause({cnf::neg(base + i), cnf::pos(base + i + 1)});
    }
  }
  for (int c = 0; c < chains; ++c) {
    solver.add_clause({cnf::pos(static_cast<Var>(c * length))});
  }
  util::CancelToken token;
  token.cancel();
  const util::Deadline deadline(0.0, &token);
  const std::uint64_t work_before =
      solver.stats().decisions + solver.stats().propagations;
  EXPECT_EQ(solver.solve({}, deadline), sat::Result::kUnknown);
  // The token is polled on the decisions+propagations counter; an
  // already-cancelled solve must stop within one poll interval.
  const std::uint64_t work_after =
      solver.stats().decisions + solver.stats().propagations;
  EXPECT_LT(work_after - work_before, 10000u);
  // The solver stays usable after the interrupted call.
  EXPECT_EQ(solver.solve({}), sat::Result::kSat);
}

TEST(Cancellation, StopsSolverMidSolve) {
  sat::Solver solver;
  solver.add_formula(pigeonhole(12));
  util::CancelToken token;
  util::Timer timer;
  sat::Result result = sat::Result::kSat;
  std::thread worker([&]() {
    // 60 s backstop: if cancellation is broken the deadline still ends
    // the test (as a failure of the elapsed bound) instead of hanging.
    const util::Deadline deadline(60.0, &token);
    result = solver.solve({}, deadline);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token.cancel();
  worker.join();
  EXPECT_EQ(result, sat::Result::kUnknown);
  EXPECT_LT(timer.seconds(), 30.0);
}

// --- cancellation of the synthesis engines ----------------------------------

/// Nested-dependency planted instance: Manthan3 needs >1 s of repair
/// work, PedantLite needs several seconds of arbiter-table work, while
/// HqsLite eliminates it in well under a second — the asymmetry the
/// racing test exploits.
dqbf::DqbfFormula slow_planted_hard() {
  workloads::PlantedParams params{16, 6, 5, 5, 180, 3};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 12;
  return workloads::gen_planted(params);
}

TEST(Cancellation, PreCancelledTokenStopsManthan3) {
  util::CancelToken token;
  token.cancel();
  core::Manthan3Options options;
  options.cancel = &token;
  core::Manthan3 synthesizer(options);
  aig::Aig manager;
  const core::SynthesisResult result =
      synthesizer.synthesize(testutil::hard_planted(3), manager);
  EXPECT_EQ(result.status, core::SynthesisStatus::kTimeout);
  // Truncated run: never reached the verify/repair loop.
  EXPECT_EQ(result.stats.counterexamples, 0u);
  EXPECT_EQ(result.stats.repairs, 0u);
}

TEST(Cancellation, StopsManthan3MidRun) {
  // No time limit: a kTimeout status can only come from the token. If
  // cancellation were broken the engine would *finish* (the instance
  // takes ~10 seconds; the bit-packed sampling/learning pipeline got too
  // fast for the old slow_planted_hard, which now completes within the
  // 100ms cancellation window) and the status assertion would fail
  // rather than the test hanging.
  workloads::PlantedParams slow_params{20, 8, 6, 8, 300, 3};
  slow_params.xor_functions = false;
  slow_params.nested_deps = true;
  slow_params.dep_size_max = 16;
  const dqbf::DqbfFormula formula = workloads::gen_planted(slow_params);
  util::CancelToken token;
  core::Manthan3Options options;
  options.cancel = &token;
  core::SynthesisResult result;
  aig::Aig manager;
  std::thread worker([&]() {
    core::Manthan3 synthesizer(options);
    result = synthesizer.synthesize(formula, manager);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token.cancel();
  worker.join();
  EXPECT_EQ(result.status, core::SynthesisStatus::kTimeout);
}

TEST(Cancellation, PreCancelledTokenStopsBaselines) {
  // slow_planted_hard is inside HqsLite's expansion cap (unlike
  // hard_planted, which it refuses outright with kLimit before doing any
  // cancellable work) and costs PedantLite seconds of arbiter work.
  const dqbf::DqbfFormula formula = slow_planted_hard();
  util::CancelToken token;
  token.cancel();
  {
    baselines::HqsLiteOptions options;
    options.cancel = &token;
    baselines::HqsLite engine(options);
    aig::Aig manager;
    EXPECT_EQ(engine.synthesize(formula, manager).status,
              core::SynthesisStatus::kTimeout);
  }
  {
    baselines::PedantLiteOptions options;
    options.cancel = &token;
    baselines::PedantLite engine(options);
    aig::Aig manager;
    EXPECT_EQ(engine.synthesize(formula, manager).status,
              core::SynthesisStatus::kTimeout);
  }
}

// --- run_engine -------------------------------------------------------------

TEST(RunEngine, AllEnginesSolveThePaperExample) {
  const dqbf::DqbfFormula formula = testutil::paper_example();
  for (const EngineKind kind :
       {EngineKind::kManthan3, EngineKind::kHqsLite,
        EngineKind::kPedantLite}) {
    aig::Aig manager;
    EngineOptions options;
    options.time_limit_seconds = 20.0;
    const core::SynthesisResult result =
        run_engine(formula, manager, kind, options);
    EXPECT_TRUE(testutil::is_certified(formula, manager, result))
        << engine_name(kind);
  }
}

TEST(RunEngine, NamesAreStable) {
  EXPECT_STREQ(engine_name(EngineKind::kManthan3), "Manthan3");
  EXPECT_STREQ(engine_name(EngineKind::kHqsLite), "HqsLite");
  EXPECT_STREQ(engine_name(EngineKind::kPedantLite), "PedantLite");
  EXPECT_STREQ(status_name(core::SynthesisStatus::kTimeout), "timeout");
}

// --- racing portfolio -------------------------------------------------------

TEST(Race, ReturnsCertifiedWinnerOnEasyInstance) {
  const dqbf::DqbfFormula formula = testutil::paper_example();
  aig::Aig manager;
  RaceOptions options;
  options.time_limit_seconds = 20.0;
  const RaceOutcome outcome = race(formula, manager, options);
  ASSERT_TRUE(outcome.solved());
  ASSERT_GE(outcome.winner, 0);
  ASSERT_EQ(outcome.lanes.size(), 3u);
  EXPECT_TRUE(outcome.lanes[outcome.winner].winner);
  EXPECT_TRUE(outcome.lanes[outcome.winner].certified);
  // The imported vector certifies against the *caller's* manager.
  const dqbf::CertificateResult cert =
      dqbf::check_certificate(formula, manager, outcome.vector);
  EXPECT_EQ(cert.status, dqbf::CertificateStatus::kValid);
}

TEST(Race, CancelsTheLosingEngines) {
  // HqsLite eliminates this instance in a fraction of the time
  // PedantLite's arbiter loop needs (seconds serially), so the race must
  // end with HqsLite certified and PedantLite stopped by the token —
  // status kTimeout with truncated stats, not its serial kRealizable.
  const dqbf::DqbfFormula formula = slow_planted_hard();
  aig::Aig manager;
  RaceOptions options;
  options.contenders = {EngineKind::kHqsLite, EngineKind::kPedantLite};
  options.time_limit_seconds = 120.0;
  const RaceOutcome outcome = race(formula, manager, options);
  ASSERT_TRUE(outcome.solved());
  ASSERT_EQ(outcome.winner, 0);
  EXPECT_EQ(outcome.lanes[0].engine, EngineKind::kHqsLite);
  EXPECT_TRUE(outcome.lanes[0].certified);
  const RaceLane& loser = outcome.lanes[1];
  EXPECT_TRUE(loser.cancelled);
  EXPECT_EQ(loser.status, core::SynthesisStatus::kTimeout);
  const dqbf::CertificateResult cert =
      dqbf::check_certificate(formula, manager, outcome.vector);
  EXPECT_EQ(cert.status, dqbf::CertificateStatus::kValid);
}

TEST(Race, ReportsUnrealizableVerdicts) {
  // Every engine detects this False instance; whichever wins, the race
  // must report kUnrealizable with no vector.
  const dqbf::DqbfFormula formula =
      workloads::gen_unrealizable({2, true, 1});
  aig::Aig manager;
  RaceOptions options;
  options.time_limit_seconds = 20.0;
  const RaceOutcome outcome = race(formula, manager, options);
  EXPECT_EQ(outcome.status, core::SynthesisStatus::kUnrealizable);
  EXPECT_GE(outcome.winner, 0);
  EXPECT_FALSE(outcome.solved());
  EXPECT_TRUE(outcome.vector.functions.empty());
}

TEST(Race, EmptyContendersIsANoOp) {
  aig::Aig manager;
  RaceOptions options;
  options.contenders = {};
  const RaceOutcome outcome =
      race(testutil::paper_example(), manager, options);
  EXPECT_EQ(outcome.winner, -1);
  EXPECT_FALSE(outcome.solved());
  EXPECT_TRUE(outcome.lanes.empty());
}

}  // namespace
}  // namespace manthan::engine
