// Bit-packed SampleMatrix: layout, growth, fingerprints, and the 64-way
// AIG batch simulator against the scalar evaluator.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "cnf/sample_matrix.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace manthan::cnf {
namespace {

Assignment random_assignment(std::size_t num_vars, util::Rng& rng) {
  Assignment a(num_vars);
  for (std::size_t v = 0; v < num_vars; ++v) {
    a.set(static_cast<Var>(v), rng.flip());
  }
  return a;
}

TEST(SampleMatrix, RoundTripsRowsAcrossWordBoundaries) {
  // 200 samples x 13 vars: crosses three 64-sample word boundaries.
  util::Rng rng(3);
  SampleMatrix m(13);
  std::vector<Assignment> rows;
  for (int s = 0; s < 200; ++s) {
    rows.push_back(random_assignment(13, rng));
    m.append(rows.back());
  }
  ASSERT_EQ(m.num_samples(), 200u);
  EXPECT_EQ(m.num_words(), 4u);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    EXPECT_EQ(m.row(s), rows[s]) << "sample " << s;
    for (Var v = 0; v < 13; ++v) {
      EXPECT_EQ(m.value(s, v), rows[s].value(v));
    }
  }
}

TEST(SampleMatrix, ColumnBitsMatchValues) {
  util::Rng rng(7);
  SampleMatrix m(5);
  for (int s = 0; s < 70; ++s) m.append(random_assignment(5, rng));
  for (Var v = 0; v < 5; ++v) {
    const std::uint64_t* col = m.column(v);
    for (std::size_t s = 0; s < m.num_samples(); ++s) {
      EXPECT_EQ(((col[s >> 6] >> (s & 63)) & 1) != 0, m.value(s, v));
    }
  }
}

TEST(SampleMatrix, TailBitsStayZero) {
  // Tail bits beyond num_samples() must be zero so popcounts over
  // un-complemented terms need no masking (decision_tree relies on it).
  util::Rng rng(11);
  SampleMatrix m(4);
  Assignment all_true(4, true);
  for (int s = 0; s < 67; ++s) m.append(all_true);
  ASSERT_EQ(m.num_words(), 2u);
  EXPECT_EQ(m.tail_mask(), (1ULL << 3) - 1);
  for (Var v = 0; v < 4; ++v) {
    EXPECT_EQ(m.column(v)[1] & ~m.tail_mask(), 0u);
  }
}

TEST(SampleMatrix, TailMaskFullWhenAligned) {
  SampleMatrix m(2);
  for (int s = 0; s < 64; ++s) m.append(Assignment(2, true));
  EXPECT_EQ(m.num_words(), 1u);
  EXPECT_EQ(m.tail_mask(), ~0ULL);
}

TEST(SampleMatrix, ColumnsStay64ByteAlignedAcrossGrowth) {
  // The SIMD kernels are fed column pointers directly; the storage promise
  // is that every column starts on a cache line (capacity is always a
  // multiple of 8 words), and growth must re-establish it.
  util::Rng rng(19);
  SampleMatrix m(9);
  std::vector<Assignment> rows;
  for (int s = 0; s < 2000; ++s) {
    rows.push_back(random_assignment(9, rng));
    m.append(rows.back());
    if (s % 257 == 0 || s == 1999) {
      for (Var v = 0; v < 9; ++v) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.column(v)) %
                      util::simd::kAlignBytes,
                  0u)
            << "after " << s + 1 << " samples, column " << v;
      }
    }
  }
  // Growth preserved every previously appended row and the tail invariant.
  for (std::size_t s = 0; s < rows.size(); ++s) {
    ASSERT_EQ(m.row(s), rows[s]) << "sample " << s;
  }
  for (Var v = 0; v < 9; ++v) {
    EXPECT_EQ(m.column(v)[m.num_words() - 1] & ~m.tail_mask(), 0u);
  }
}

TEST(SampleMatrix, AppendRejectsUndersizedAssignments) {
  // An assignment narrower than the matrix block would silently read
  // out of range; append must reject it instead of asserting.
  SampleMatrix m(5);
  EXPECT_THROW(m.append(Assignment(4, true)), std::invalid_argument);
  m.append(Assignment(5, true));
  EXPECT_EQ(m.num_samples(), 1u);
}

TEST(SampleMatrix, AppendIgnoresVariablesAboveTheMatrixBlock) {
  // Solver models carry selector/Tseitin variables above the matrix
  // block; append must read only the first num_vars values.
  SampleMatrix m(3);
  Assignment a(10, true);
  m.append(a);
  EXPECT_EQ(m.row(0), Assignment(3, true));
}

TEST(Fingerprint, DistinctAssignmentsDistinctFingerprints) {
  // 1000 random 100-var assignments: no collisions expected at 64 bits.
  util::Rng rng(5);
  std::set<std::uint64_t> fps;
  std::set<std::vector<bool>> distinct;
  for (int i = 0; i < 1000; ++i) {
    const Assignment a = random_assignment(100, rng);
    if (distinct.insert(a.bits()).second) {
      EXPECT_TRUE(fps.insert(fingerprint(a)).second);
    }
  }
}

TEST(Fingerprint, EqualOnTruncatedPrefix) {
  // fingerprint(a, n) must agree between a full solver model and the
  // matrix row it produces (the cross-round reuse dedup contract).
  util::Rng rng(9);
  const Assignment full = random_assignment(150, rng);
  SampleMatrix m(90);
  m.append(full);
  EXPECT_EQ(fingerprint(full, 90), fingerprint(m.row(0)));
  EXPECT_NE(fingerprint(full, 90), fingerprint(full, 91));
}

TEST(Fingerprint, RowFingerprintMatchesUnpackedFingerprint) {
  util::Rng rng(21);
  SampleMatrix m(130);
  for (int s = 0; s < 70; ++s) m.append(random_assignment(130, rng));
  for (std::size_t s = 0; s < m.num_samples(); ++s) {
    EXPECT_EQ(m.row_fingerprint(s), fingerprint(m.row(s))) << "sample " << s;
  }
}

TEST(Fingerprint, SensitiveToEveryBit) {
  util::Rng rng(13);
  const Assignment base = random_assignment(130, rng);
  const std::uint64_t h = fingerprint(base);
  for (Var v = 0; v < 130; ++v) {
    Assignment flipped = base;
    flipped.set(v, !flipped.value(v));
    EXPECT_NE(fingerprint(flipped), h) << "bit " << v;
  }
}

// --- 64-way batch simulation over the matrix -------------------------------

aig::Ref random_cone(aig::Aig& m, int inputs, int gates, util::Rng& rng) {
  std::vector<aig::Ref> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(m.input(i));
  for (int g = 0; g < gates; ++g) {
    const aig::Ref a = pool[rng.next_below(pool.size())] ^
                       static_cast<aig::Ref>(rng.flip());
    const aig::Ref b = pool[rng.next_below(pool.size())] ^
                       static_cast<aig::Ref>(rng.flip());
    pool.push_back(m.and_gate(a, b));
  }
  return pool.back() ^ static_cast<aig::Ref>(rng.flip());
}

TEST(SimulateMatrix, MatchesScalarEvaluation) {
  util::Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    aig::Aig manager;
    const aig::Ref root = random_cone(manager, 10, 40, rng);
    SampleMatrix m(10);
    for (int s = 0; s < 150; ++s) m.append(random_assignment(10, rng));
    const std::vector<std::uint64_t> sim =
        aig::simulate_matrix(manager, root, m);
    ASSERT_EQ(sim.size(), m.num_words());
    for (std::size_t s = 0; s < m.num_samples(); ++s) {
      std::unordered_map<std::int32_t, bool> inputs;
      for (Var v = 0; v < 10; ++v) {
        inputs[static_cast<std::int32_t>(v)] = m.value(s, v);
      }
      EXPECT_EQ(((sim[s >> 6] >> (s & 63)) & 1) != 0,
                manager.evaluate(root, inputs))
          << "round " << round << " sample " << s;
    }
  }
}

TEST(SimulateMatrix, TailBitsAreZeroInTheReturnedWords) {
  // Contract since the SIMD restructure: simulate_matrix masks the final
  // word before returning, so callers may popcount the result directly.
  util::Rng rng(29);
  aig::Aig manager;
  const aig::Ref root = random_cone(manager, 6, 20, rng);
  SampleMatrix m(6);
  for (int s = 0; s < 67; ++s) m.append(random_assignment(6, rng));
  ASSERT_NE(m.tail_mask(), ~0ULL);
  const std::vector<std::uint64_t> sim =
      aig::simulate_matrix(manager, root, m);
  EXPECT_EQ(sim.back() & ~m.tail_mask(), 0u);
  // Same for a constant-true cone, whose unmasked word would be all-ones.
  const std::vector<std::uint64_t> t =
      aig::simulate_matrix(manager, aig::kTrueRef, m);
  EXPECT_EQ(t.back(), m.tail_mask());
}

TEST(SimulateMatrix, ConstantsAndForeignInputsAreFalse) {
  aig::Aig manager;
  SampleMatrix m(2);
  for (int s = 0; s < 5; ++s) m.append(Assignment(2, true));
  // Constant true cone.
  const std::vector<std::uint64_t> t =
      aig::simulate_matrix(manager, aig::kTrueRef, m);
  EXPECT_EQ(t[0] & m.tail_mask(), m.tail_mask());
  // Input outside the matrix block evaluates false.
  const aig::Ref foreign = manager.input(99);
  const std::vector<std::uint64_t> f =
      aig::simulate_matrix(manager, foreign, m);
  EXPECT_EQ(f[0] & m.tail_mask(), 0u);
}

}  // namespace
}  // namespace manthan::cnf
