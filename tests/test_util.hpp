// Shared helpers for the test suites: canonical DQBF fixtures, tiny
// DQDIMACS text fixtures, planted-formula builders, and a certificate-check
// matcher. Everything is inline and header-only; a suite only pays the link
// dependencies of the helpers it actually calls.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqbf.hpp"
#include "workloads/workloads.hpp"

namespace manthan::testutil {

/// The running example from the paper:
/// ∀x1,x2,x3 ∃{x1}y1 ∃{x1,x2}y2 ∃{x2,x3}y3.
/// (x1 ∨ y1) ∧ (y2 ↔ (y1 ∨ ¬x2)) ∧ (y3 ↔ (x2 ∨ x3))
inline dqbf::DqbfFormula paper_example() {
  dqbf::DqbfFormula f;
  for (cnf::Var x = 0; x < 3; ++x) f.add_universal(x);
  f.add_existential(3, {0});
  f.add_existential(4, {0, 1});
  f.add_existential(5, {1, 2});
  f.matrix().add_clause({cnf::pos(0), cnf::pos(3)});
  f.matrix().add_clause({cnf::neg(4), cnf::pos(3), cnf::neg(1)});
  f.matrix().add_clause({cnf::pos(4), cnf::neg(3)});
  f.matrix().add_clause({cnf::pos(4), cnf::pos(1)});
  f.matrix().add_clause({cnf::neg(5), cnf::pos(1), cnf::pos(2)});
  f.matrix().add_clause({cnf::pos(5), cnf::neg(1)});
  f.matrix().add_clause({cnf::pos(5), cnf::neg(2)});
  return f;
}

/// ∀x1,x2 ∃{x1}y. (y ↔ x1) — the smallest realizable spec with a proper
/// dependency restriction (y may not see x2).
inline dqbf::DqbfFormula identity_spec() {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0});
  f.matrix().add_clause({cnf::neg(2), cnf::pos(0)});
  f.matrix().add_clause({cnf::pos(2), cnf::neg(0)});
  return f;
}

/// Tiny DQDIMACS text exercising a-, d- and e-lines (1-based variables):
/// ∀x1,x2 ∃{x1}y3 ∃{x1,x2}y4 ∃{x1,x2}y5 with two clauses.
inline std::string tiny_dqdimacs() {
  return
      "p cnf 5 2\n"
      "a 1 2 0\n"
      "d 3 1 0\n"
      "d 4 1 2 0\n"
      "e 5 0\n"
      "1 3 0\n"
      "-4 5 2 0\n";
}

// --- planted-formula builders (realizable by construction) -----------------
// Canonical parameter points shared by several suites; pick the smallest
// size that exercises what you need so suites stay fast.

/// 6 universals / 3 existentials — small enough for exhaustive checking.
inline dqbf::DqbfFormula tiny_planted(std::uint64_t seed,
                                      std::size_t num_clauses = 18) {
  return workloads::gen_planted({6, 3, 3, 4, num_clauses, seed});
}

/// 8 universals / 4 existentials — the default mid-size instance.
inline dqbf::DqbfFormula small_planted(std::uint64_t seed,
                                       std::size_t num_clauses = 30) {
  return workloads::gen_planted({8, 4, 3, 5, num_clauses, seed});
}

/// 14 universals / 8 existentials with wide dependency sets — big enough
/// that engines do real work, used by the deadline/timeout suites.
inline dqbf::DqbfFormula hard_planted(std::uint64_t seed) {
  return workloads::gen_planted({14, 8, 7, 8, 80, seed});
}

// --- certificate-check matcher ---------------------------------------------

/// Predicate form usable as EXPECT_TRUE(is_certified(f, manager, result));
/// failure messages carry the synthesis status and certificate verdict.
inline ::testing::AssertionResult is_certified(
    const dqbf::DqbfFormula& f, const aig::Aig& manager,
    const core::SynthesisResult& result) {
  if (result.status != core::SynthesisStatus::kRealizable) {
    return ::testing::AssertionFailure()
           << "synthesis did not return kRealizable (status="
           << static_cast<int>(result.status) << ")";
  }
  const dqbf::CertificateResult cert =
      dqbf::check_certificate(f, manager, result.vector);
  if (cert.status != dqbf::CertificateStatus::kValid) {
    return ::testing::AssertionFailure()
           << "certificate check rejected the vector (status="
           << static_cast<int>(cert.status) << ")";
  }
  return ::testing::AssertionSuccess();
}

/// Hard-failing form: aborts the calling test on an uncertified result.
inline void expect_certified(const dqbf::DqbfFormula& f,
                             const aig::Aig& manager,
                             const core::SynthesisResult& result) {
  ASSERT_EQ(result.status, core::SynthesisStatus::kRealizable);
  EXPECT_TRUE(is_certified(f, manager, result));
}

}  // namespace manthan::testutil
