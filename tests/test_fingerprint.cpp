// Canonical spec fingerprints: invariance under the representation
// freedoms a cache key must absorb (clause order, literal order,
// role-preserving variable renaming), sensitivity to everything semantic
// (clauses, roles, dependency sets), the tier-2 key locality that makes
// near-duplicate specs share analyses, and a collision smoke sweep over
// randomized families.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "test_util.hpp"
#include "dqbf/dqbf.hpp"
#include "dqbf/fingerprint.hpp"
#include "workloads/workloads.hpp"

namespace manthan::dqbf {
namespace {

using cnf::Clause;
using cnf::Lit;
using cnf::Var;

/// Rebuild `f` with every variable v renamed to perm[v] (roles and
/// dependency sets carried along) — the isomorphism the fingerprint must
/// be blind to.
DqbfFormula rename(const DqbfFormula& f, const std::vector<Var>& perm) {
  DqbfFormula out;
  out.matrix().ensure_vars(f.matrix().num_vars());
  for (const Var u : f.universals()) out.add_universal(perm[u]);
  for (const Existential& e : f.existentials()) {
    std::vector<Var> deps;
    deps.reserve(e.deps.size());
    for (const Var d : e.deps) deps.push_back(perm[d]);
    out.add_existential(perm[e.var], std::move(deps));
  }
  for (const Clause& clause : f.matrix().clauses()) {
    Clause mapped;
    mapped.reserve(clause.size());
    for (const Lit l : clause) mapped.emplace_back(perm[l.var()], l.negated());
    out.matrix().add_clause(mapped);
  }
  return out;
}

/// Rebuild `f` with clauses and in-clause literal order shuffled.
DqbfFormula shuffle_clauses(const DqbfFormula& f, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  DqbfFormula out;
  out.matrix().ensure_vars(f.matrix().num_vars());
  for (const Var u : f.universals()) out.add_universal(u);
  for (const Existential& e : f.existentials()) {
    out.add_existential(e.var, e.deps);
  }
  std::vector<Clause> clauses = f.matrix().clauses();
  std::shuffle(clauses.begin(), clauses.end(), rng);
  for (Clause& clause : clauses) {
    std::shuffle(clause.begin(), clause.end(), rng);
    out.matrix().add_clause(clause);
  }
  return out;
}

std::vector<Var> random_permutation(Var n, std::uint64_t seed) {
  std::vector<Var> perm(static_cast<std::size_t>(n));
  for (Var v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(Fingerprint, ToStringIs32HexDigits) {
  const Fingerprint fp = fingerprint(testutil::paper_example());
  const std::string hex = to_string(fp);
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Fingerprint, ComparisonOperators) {
  const Fingerprint a{1, 2};
  const Fingerprint b{1, 3};
  const Fingerprint c{2, 0};
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_FALSE(c < a);
}

TEST(Fingerprint, ClauseAndLiteralPermutationInvariance) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const DqbfFormula f = testutil::small_planted(seed);
    const CanonicalForm base = canonicalize(f);
    const CanonicalForm shuffled = canonicalize(shuffle_clauses(f, 77 * seed));
    EXPECT_EQ(base.spec, shuffled.spec);
    EXPECT_EQ(base.matrix, shuffled.matrix);
    EXPECT_EQ(base.existential_keys, shuffled.existential_keys);
  }
}

TEST(Fingerprint, VariableRenamingInvariance) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const DqbfFormula f = testutil::small_planted(seed);
    const std::vector<Var> perm =
        random_permutation(f.matrix().num_vars(), 1000 + seed);
    const DqbfFormula renamed = rename(f, perm);
    const CanonicalForm base = canonicalize(f);
    const CanonicalForm iso = canonicalize(renamed);
    EXPECT_EQ(base.spec, iso.spec);
    EXPECT_EQ(base.matrix, iso.matrix);
    // The existentials() list may come back in a different order; the
    // keys must agree as a multiset.
    std::vector<Fingerprint> a = base.existential_keys;
    std::vector<Fingerprint> b = iso.existential_keys;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(Fingerprint, RenamingPlusShufflingInvariance) {
  const DqbfFormula f = testutil::paper_example();
  const std::vector<Var> perm =
      random_permutation(f.matrix().num_vars(), 9);
  const DqbfFormula twisted = shuffle_clauses(rename(f, perm), 31);
  EXPECT_EQ(fingerprint(f), fingerprint(twisted));
}

TEST(Fingerprint, SensitiveToClauseChanges) {
  const DqbfFormula f = testutil::paper_example();
  DqbfFormula extra = f;
  extra.matrix().add_clause({cnf::pos(0), cnf::neg(3)});
  EXPECT_NE(fingerprint(f), fingerprint(extra));
}

TEST(Fingerprint, SensitiveToDependencySets) {
  // Shrinking one Henkin set changes the spec but leaves the matrix
  // untouched — the split the two cache tiers rely on.
  DqbfFormula f = testutil::paper_example();
  DqbfFormula narrowed;
  narrowed.matrix().ensure_vars(f.matrix().num_vars());
  for (const Var u : f.universals()) narrowed.add_universal(u);
  const auto& exs = f.existentials();
  for (std::size_t i = 0; i < exs.size(); ++i) {
    std::vector<Var> deps = exs[i].deps;
    if (i == 1) deps.pop_back();
    narrowed.add_existential(exs[i].var, std::move(deps));
  }
  for (const Clause& clause : f.matrix().clauses()) {
    narrowed.matrix().add_clause(clause);
  }
  const CanonicalForm base = canonicalize(f);
  const CanonicalForm changed = canonicalize(narrowed);
  EXPECT_NE(base.spec, changed.spec);
  EXPECT_EQ(base.matrix, changed.matrix);
}

TEST(Fingerprint, ExistentialKeysLocalizeDependencyEdits) {
  // A near-duplicate spec — one OTHER existential's dependency set
  // changed — must keep the untouched existentials' tier-2 keys, so
  // their Padoa verdicts transfer.
  DqbfFormula f = testutil::paper_example();
  DqbfFormula edited;
  edited.matrix().ensure_vars(f.matrix().num_vars());
  for (const Var u : f.universals()) edited.add_universal(u);
  const auto& exs = f.existentials();
  for (std::size_t i = 0; i < exs.size(); ++i) {
    std::vector<Var> deps = exs[i].deps;
    if (i == 0) deps.push_back(2);  // widen y1's window {x1} -> {x1,x3}
    edited.add_existential(exs[i].var, std::move(deps));
  }
  for (const Clause& clause : f.matrix().clauses()) {
    edited.matrix().add_clause(clause);
  }
  const CanonicalForm base = canonicalize(f);
  const CanonicalForm changed = canonicalize(edited);
  EXPECT_NE(base.spec, changed.spec);
  ASSERT_EQ(base.existential_keys.size(), changed.existential_keys.size());
  EXPECT_NE(base.existential_keys[0], changed.existential_keys[0]);
  EXPECT_EQ(base.existential_keys[1], changed.existential_keys[1]);
  EXPECT_EQ(base.existential_keys[2], changed.existential_keys[2]);
}

TEST(Fingerprint, DistinctAcrossGeneratorFamilies) {
  const std::vector<workloads::Instance> suite =
      workloads::standard_suite({1, 2023});
  std::set<Fingerprint> seen;
  for (const workloads::Instance& instance : suite) {
    seen.insert(fingerprint(instance.formula));
  }
  EXPECT_EQ(seen.size(), suite.size());
}

TEST(Fingerprint, CollisionSmokeSweep) {
  // Randomized planted / xor-chain families: every distinct generation
  // must hash distinctly (128 bits; a collision here means a structural
  // bug, not bad luck).
  std::set<Fingerprint> seen;
  std::size_t generated = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const std::size_t clauses : {18u, 24u}) {
      workloads::PlantedParams params{6, 3, 3, 4, clauses, seed};
      seen.insert(fingerprint(workloads::gen_planted(params)));
      ++generated;
    }
  }
  // Xor chains are deterministic in num_pairs (the seed only matters
  // with xor_with_shared), so sweep the structural parameter.
  for (std::size_t pairs = 1; pairs <= 5; ++pairs) {
    for (const bool shared : {false, true}) {
      workloads::XorChainParams xparams;
      xparams.num_pairs = pairs;
      xparams.xor_with_shared = shared;
      seen.insert(fingerprint(workloads::gen_xor_chain(xparams)));
      ++generated;
    }
  }
  EXPECT_EQ(seen.size(), generated);
}

TEST(Fingerprint, MatrixKeySharedAcrossRenamedNearDuplicates) {
  // Rename a spec, then also change a dependency set: the matrix
  // fingerprint still matches the original (role-free coloring), which
  // is what lets tier-2 keys transfer across renamings.
  const DqbfFormula f = testutil::small_planted(3);
  const std::vector<Var> perm =
      random_permutation(f.matrix().num_vars(), 55);
  const DqbfFormula renamed = rename(f, perm);
  EXPECT_EQ(canonicalize(f).matrix, canonicalize(renamed).matrix);
}

}  // namespace
}  // namespace manthan::dqbf
