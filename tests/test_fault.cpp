// Robustness under injected faults and resource budgets: the fault
// injector's spec grammar and schedule determinism, ResourceBudget trip
// semantics, full Manthan3 synthesize runs under seeded fault schedules
// (same schedule → same status, twice), the service's internal-error and
// budget paths, the crash-durable tier-1 cache (warm restart,
// corruption tolerance, eviction), and the daemon's retry / backoff /
// quarantine / journal-recovery machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "cnf/cnf.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqdimacs.hpp"
#include "dqbf/fingerprint.hpp"
#include "engine/daemon.hpp"
#include "engine/service.hpp"
#include "obs/metrics.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "workloads/workloads.hpp"

namespace manthan {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

using engine::DaemonOptions;
using engine::DrainReport;
using engine::Service;
using engine::ServiceOptions;
using engine::ServiceResponse;
using engine::SolveOptions;
using util::ResourceBudget;

/// Every test in this file runs with a clean process-global injector;
/// a schedule leaked across tests would poison unrelated suites.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

ServiceOptions single_manthan3(std::size_t workers = 1) {
  ServiceOptions options;
  options.workers = workers;
  options.admission = ServiceOptions::Admission::kSingle;
  options.single_engine = engine::EngineKind::kManthan3;
  return options;
}

/// Nested-dependency planted instance that Manthan3 chews on for many
/// seconds — long enough that any budget trips before the verdict.
dqbf::DqbfFormula slow_formula() {
  workloads::PlantedParams params{20, 8, 6, 8, 300, 3};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 16;
  return workloads::gen_planted(params);
}

dqbf::DqbfFormula unrealizable_formula() {
  workloads::UnrealizableParams params;
  params.num_constraints = 1;
  params.extension_detectable = true;
  params.seed = 7;
  return workloads::gen_unrealizable(params);
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Fault-spec grammar.
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
  const fault::Schedule schedule = fault::parse_schedule(
      "seed=7;sat.arena.grow:alloc:after=3:every=2:limit=4:p=0.5;"
      "daemon.write:io;service.job:stall:ms=25");
  EXPECT_EQ(schedule.seed, 7u);
  ASSERT_EQ(schedule.rules.size(), 3u);

  const fault::Rule& arena = schedule.rules[0];
  EXPECT_EQ(arena.site, fault::Site::kSatArenaGrow);
  EXPECT_EQ(arena.kind, fault::Kind::kAlloc);
  EXPECT_EQ(arena.after, 3u);
  EXPECT_EQ(arena.every, 2u);
  EXPECT_EQ(arena.limit, 4u);
  EXPECT_DOUBLE_EQ(arena.probability, 0.5);

  const fault::Rule& io = schedule.rules[1];
  EXPECT_EQ(io.site, fault::Site::kDaemonWrite);
  EXPECT_EQ(io.kind, fault::Kind::kIo);
  EXPECT_EQ(io.after, 1u);   // defaults
  EXPECT_EQ(io.every, 0u);
  EXPECT_EQ(io.limit, 1u);

  const fault::Rule& stall = schedule.rules[2];
  EXPECT_EQ(stall.kind, fault::Kind::kStall);
  EXPECT_EQ(stall.stall_ms, 25u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parse_schedule("nonsense.site:alloc"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("sat.arena.grow:frobnicate"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("sat.arena.grow"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("sat.arena.grow:alloc:after=zero"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("sat.arena.grow:alloc:after=0"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("sat.arena.grow:alloc:p=2.5"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_schedule("seed=7;sat.arena.grow:alloc:bogus"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Injector firing discipline.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, FiresAtExactPollIndex) {
  fault::install("seed=1;sat.arena.grow:alloc:after=3");
  std::vector<fault::Kind> kinds;
  for (int i = 0; i < 5; ++i) {
    kinds.push_back(fault::poll(fault::Site::kSatArenaGrow));
  }
  const std::vector<fault::Kind> expected{
      fault::Kind::kNone, fault::Kind::kNone, fault::Kind::kAlloc,
      fault::Kind::kNone, fault::Kind::kNone};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(fault::stats(fault::Site::kSatArenaGrow).polls, 5u);
  EXPECT_EQ(fault::stats(fault::Site::kSatArenaGrow).fires, 1u);
  EXPECT_EQ(fault::total_fires(), 1u);
}

TEST_F(FaultTest, EveryAndLimitBoundRepeats) {
  fault::install("seed=1;daemon.read:io:after=2:every=2:limit=2");
  std::vector<std::size_t> fired_at;
  for (std::size_t poll = 1; poll <= 8; ++poll) {
    if (fault::poll(fault::Site::kDaemonRead) == fault::Kind::kIo) {
      fired_at.push_back(poll);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::size_t>{2, 4}));
}

TEST_F(FaultTest, ProbabilisticFiringIsSeedDeterministic) {
  const std::string spec =
      "seed=9;service.job:io:after=1:every=1:limit=0:p=0.5";
  const auto record = [&] {
    fault::install(spec);
    std::vector<fault::Kind> kinds;
    for (int i = 0; i < 64; ++i) {
      kinds.push_back(fault::poll(fault::Site::kServiceJob));
    }
    return kinds;
  };
  const std::vector<fault::Kind> first = record();
  const std::vector<fault::Kind> second = record();
  EXPECT_EQ(first, second);
  const auto fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), fault::Kind::kIo));
  EXPECT_GT(fires, 0u);   // p=0.5 over 64 polls: both extremes are
  EXPECT_LT(fires, 64u);  // astronomically unlikely under a fair coin
}

TEST_F(FaultTest, InstallClearAndActiveSpec) {
  EXPECT_FALSE(fault::active());
  EXPECT_EQ(fault::poll(fault::Site::kServiceJob), fault::Kind::kNone);
  const std::string spec = "seed=3;service.job:cancel:after=1";
  fault::install(spec);
  EXPECT_TRUE(fault::active());
  EXPECT_EQ(fault::active_spec(), spec);
  fault::clear();
  EXPECT_FALSE(fault::active());
  EXPECT_EQ(fault::poll(fault::Site::kServiceJob), fault::Kind::kNone);
}

TEST_F(FaultTest, StallSleepsInsidePoll) {
  fault::install("seed=1;service.job:stall:after=1:ms=30");
  const auto start = std::chrono::steady_clock::now();
  const fault::Kind kind = fault::poll(fault::Site::kServiceJob);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(kind, fault::Kind::kStall);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
}

// ---------------------------------------------------------------------------
// ResourceBudget semantics.
// ---------------------------------------------------------------------------

TEST(ResourceBudgetTest, MemoryChargeTrips) {
  ResourceBudget::Limits limits;
  limits.memory_bytes = 1000;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.charge_bytes(600));
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kNone);
  EXPECT_FALSE(budget.token().cancelled());
  EXPECT_FALSE(budget.charge_bytes(600));
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kMemory);
  EXPECT_TRUE(budget.token().cancelled());
  EXPECT_FALSE(budget.charge_bytes(1));  // stays tripped
}

TEST(ResourceBudgetTest, ConflictLimitTrips) {
  ResourceBudget::Limits limits;
  limits.conflicts = 10;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.add_conflicts(10));
  EXPECT_FALSE(budget.add_conflicts(1));
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kConflicts);
}

TEST(ResourceBudgetTest, FirstCauseWins) {
  ResourceBudget budget;
  budget.trip(ResourceBudget::Trip::kTime);
  budget.trip(ResourceBudget::Trip::kMemory);
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kTime);
}

TEST(ResourceBudgetTest, UnlimitedBudgetNeverTrips) {
  ResourceBudget budget;  // all limits zero = unlimited
  EXPECT_FALSE(ResourceBudget::Limits{}.any());
  EXPECT_TRUE(budget.charge_bytes(1ull << 40));
  EXPECT_TRUE(budget.add_conflicts(1ull << 40));
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kNone);
}

TEST(ResourceBudgetTest, BudgetScopeNestsAndRestores) {
  EXPECT_EQ(util::current_budget(), nullptr);
  ResourceBudget outer;
  {
    util::BudgetScope outer_scope(&outer);
    EXPECT_EQ(util::current_budget(), &outer);
    {
      // Installing null clears: an unbudgeted nested request must not
      // charge the outer request's budget.
      util::BudgetScope inner_scope(nullptr);
      EXPECT_EQ(util::current_budget(), nullptr);
    }
    EXPECT_EQ(util::current_budget(), &outer);
  }
  EXPECT_EQ(util::current_budget(), nullptr);
}

TEST(ResourceBudgetTest, GuardedGrowThrowsBeforeAllocWhenOverBudget) {
  ResourceBudget::Limits limits;
  limits.memory_bytes = 100;
  ResourceBudget budget(limits);
  util::BudgetScope scope(&budget);
  bool alloc_ran = false;
  try {
    util::guarded_grow(fault::Site::kSatArenaGrow, 200,
                       [&] { alloc_ran = true; });
    FAIL() << "guarded_grow must throw when over budget";
  } catch (const util::OutOfBudgetError& e) {
    EXPECT_EQ(e.cause(), ResourceBudget::Trip::kMemory);
    EXPECT_NE(std::string(e.what()).find("sat.arena.grow"),
              std::string::npos);
  }
  EXPECT_FALSE(alloc_ran);
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kMemory);
}

TEST(ResourceBudgetTest, GuardedGrowConvertsBadAlloc) {
  ResourceBudget budget;
  util::BudgetScope scope(&budget);
  try {
    util::guarded_grow(fault::Site::kAigNodeAlloc, 8,
                       [] { throw std::bad_alloc(); });
    FAIL() << "guarded_grow must convert bad_alloc";
  } catch (const util::OutOfBudgetError& e) {
    EXPECT_EQ(e.cause(), ResourceBudget::Trip::kAllocFailure);
  }
  EXPECT_EQ(budget.tripped(), ResourceBudget::Trip::kAllocFailure);
  EXPECT_TRUE(budget.token().cancelled());
}

TEST(ResourceBudgetTest, GuardedGrowConvertsWithoutBudgetToo) {
  // Even an unbudgeted run degrades an OOM at a guarded site into
  // OutOfBudgetError (→ kOutOfBudget result) instead of process death.
  EXPECT_EQ(util::current_budget(), nullptr);
  EXPECT_THROW(util::guarded_grow(fault::Site::kSampleMatrixGrow, 8,
                                  [] { throw std::bad_alloc(); }),
               util::OutOfBudgetError);
}

// ---------------------------------------------------------------------------
// Full synthesize runs under seeded fault schedules: no crash, no hang,
// and the status is a pure function of the schedule.
// ---------------------------------------------------------------------------

struct RunOutcome {
  core::SynthesisStatus status;
  std::uint64_t fires;
};

RunOutcome run_manthan3_with_faults(const std::string& spec) {
  core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  options.fault_spec = spec;
  core::Manthan3 engine(options);
  aig::Aig manager;
  const dqbf::DqbfFormula f = testutil::paper_example();
  const core::SynthesisResult result = engine.synthesize(f, manager);
  return {result.status, fault::total_fires()};
}

TEST_F(FaultTest, ScheduledRunsAreDeterministic) {
  // Six schedules mixing alloc faults, stalls, forced inprocess
  // cancellation, and probabilistic firing across every engine-side
  // site. Each runs the full pipeline twice; the verdict and the number
  // of injected faults must be a pure function of the schedule.
  const char* schedules[] = {
      "seed=11;sat.arena.grow:alloc:after=1",
      "seed=12;sample_matrix.grow:alloc:after=1",
      "seed=13;aig.node.alloc:alloc:after=2",
      "seed=14;sat.arena.grow:alloc:after=40;"
      "sample_matrix.grow:stall:after=1:ms=1",
      "seed=15;sat.inprocess.step:cancel:after=1;"
      "sat.arena.grow:stall:after=2:ms=1",
      "seed=16;sat.arena.grow:alloc:after=5:every=3:limit=2:p=0.6",
  };
  for (const char* spec : schedules) {
    const RunOutcome first = run_manthan3_with_faults(spec);
    const RunOutcome second = run_manthan3_with_faults(spec);
    EXPECT_EQ(first.status, second.status) << spec;
    EXPECT_EQ(first.fires, second.fires) << spec;
    // Whatever the schedule did, the engine must return a verdict, not
    // crash or wedge: every status in the enum is acceptable except an
    // uninitialized garbage value, which EQ-comparison would not catch —
    // so pin the set explicitly.
    EXPECT_TRUE(first.status == core::SynthesisStatus::kRealizable ||
                first.status == core::SynthesisStatus::kUnrealizable ||
                first.status == core::SynthesisStatus::kIncomplete ||
                first.status == core::SynthesisStatus::kLimit ||
                first.status == core::SynthesisStatus::kTimeout ||
                first.status == core::SynthesisStatus::kOutOfBudget)
        << spec;
  }
}

TEST_F(FaultTest, ArenaAllocFaultDegradesToOutOfBudget) {
  // The very first clause-arena growth fails: the run must degrade into
  // kOutOfBudget, not crash on bad_alloc.
  const RunOutcome outcome =
      run_manthan3_with_faults("seed=21;sat.arena.grow:alloc:after=1");
  EXPECT_EQ(outcome.status, core::SynthesisStatus::kOutOfBudget);
  EXPECT_GE(outcome.fires, 1u);
}

TEST_F(FaultTest, ControlScheduleNeverFires) {
  // A schedule whose poll index is never reached must be bit-for-bit a
  // clean run: realizable verdict, zero fires.
  const RunOutcome outcome =
      run_manthan3_with_faults("seed=22;sat.arena.grow:alloc:after=1000000");
  EXPECT_EQ(outcome.status, core::SynthesisStatus::kRealizable);
  EXPECT_EQ(outcome.fires, 0u);
}

// ---------------------------------------------------------------------------
// Service: worker exceptions surface as structured internal errors.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, WorkerExceptionBecomesInternalError) {
  const std::uint64_t exceptions_before =
      counter_value("service_job_exceptions_total");
  fault::install("seed=1;service.job:io:after=1");
  Service service(single_manthan3());
  const dqbf::DqbfFormula f = testutil::paper_example();

  const ServiceResponse failed = service.submit(f).get();
  EXPECT_EQ(failed.status, core::SynthesisStatus::kInternalError);
  EXPECT_NE(failed.error.find("injected"), std::string::npos);
  EXPECT_FALSE(failed.certified);
  EXPECT_FALSE(failed.cancelled);
  EXPECT_EQ(service.stats().internal_errors, 1u);
  EXPECT_EQ(counter_value("service_job_exceptions_total"),
            exceptions_before + 1);

  // The rule is exhausted (limit defaults to 1): the service must stay
  // fully usable, and the error must not have poisoned the cache.
  const ServiceResponse ok = service.submit(f).get();
  EXPECT_EQ(ok.status, core::SynthesisStatus::kRealizable);
  EXPECT_TRUE(ok.certified);
  EXPECT_FALSE(ok.cache_hit);
  const ServiceResponse warm = service.submit(f).get();
  EXPECT_TRUE(warm.cache_hit);
}

// ---------------------------------------------------------------------------
// Service: per-request budgets end runs as kOutOfBudget.
// ---------------------------------------------------------------------------

TEST(ServiceBudget, MemoryBudgetTripsAndIsNotCached) {
  const std::uint64_t trips_before =
      counter_value("budget_trips_total_memory");
  Service service(single_manthan3());
  const dqbf::DqbfFormula f = slow_formula();

  SolveOptions tiny;
  tiny.budget = ResourceBudget::Limits{};
  tiny.budget->memory_bytes = 4096;  // trips at the first arena growth
  const ServiceResponse tripped = service.submit(f, tiny).get();
  EXPECT_EQ(tripped.status, core::SynthesisStatus::kOutOfBudget);
  EXPECT_EQ(tripped.budget_trip, ResourceBudget::Trip::kMemory);
  EXPECT_FALSE(tripped.cancelled);  // a final answer, not an interrupt
  EXPECT_FALSE(tripped.certified);
  EXPECT_EQ(service.stats().budget_trips, 1u);
  EXPECT_EQ(counter_value("budget_trips_total_memory"), trips_before + 1);

  // kOutOfBudget must not enter the tier-1 cache: a later unbudgeted
  // submission of the same spec gets a real run, not the truncated one.
  EXPECT_EQ(service.stats().cache_entries, 0u);
}

TEST(ServiceBudget, ConflictBudgetTrips) {
  Service service(single_manthan3());
  SolveOptions options;
  options.budget = ResourceBudget::Limits{};
  options.budget->conflicts = 1;
  const ServiceResponse response =
      service.submit(slow_formula(), options).get();
  EXPECT_EQ(response.status, core::SynthesisStatus::kOutOfBudget);
  EXPECT_EQ(response.budget_trip, ResourceBudget::Trip::kConflicts);
}

TEST(ServiceBudget, WallClockWatchdogTrips) {
  ServiceOptions service_options = single_manthan3();
  service_options.watchdog_poll_ms = 5;
  Service service(service_options);
  SolveOptions options;
  options.budget = ResourceBudget::Limits{};
  options.budget->wall_seconds = 0.2;
  const ServiceResponse response =
      service.submit(slow_formula(), options).get();
  EXPECT_EQ(response.status, core::SynthesisStatus::kOutOfBudget);
  EXPECT_EQ(response.budget_trip, ResourceBudget::Trip::kTime);
  // The watchdog must interrupt a ~10 s solve well before it finishes.
  EXPECT_LT(response.solve_seconds, 8.0);
}

TEST(ServiceBudget, GenerousDefaultBudgetDoesNotPerturbResults) {
  // A budget far above the instance's real footprint must be invisible:
  // same verdict and same deterministic counters as an unbudgeted run.
  Service plain(single_manthan3());
  ServiceOptions budgeted_options = single_manthan3();
  budgeted_options.default_budget.memory_bytes = 1ull << 32;
  budgeted_options.default_budget.conflicts = 1ull << 40;
  Service budgeted(budgeted_options);

  const dqbf::DqbfFormula f = testutil::paper_example();
  const ServiceResponse a = plain.submit(f).get();
  const ServiceResponse b = budgeted.submit(f).get();
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.stats.samples, b.stats.samples);
  EXPECT_EQ(a.stats.repairs, b.stats.repairs);
  EXPECT_EQ(a.stats.counterexamples, b.stats.counterexamples);
}

// ---------------------------------------------------------------------------
// Crash-durable tier-1 cache.
// ---------------------------------------------------------------------------

class PersistedCache : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("manthan3_cache_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::clear();
    fs::remove_all(dir_);
  }

  ServiceOptions cached_options() {
    ServiceOptions options = single_manthan3();
    options.cache_dir = dir_.string();
    return options;
  }

  std::size_t cache_file_count() const {
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".m3c") ++count;
    }
    return count;
  }

  fs::path dir_;
};

TEST_F(PersistedCache, WarmHitAcrossServiceInstances) {
  const dqbf::DqbfFormula f = testutil::paper_example();
  ServiceResponse cold;
  {
    Service service(cached_options());
    cold = service.submit(f).get();
    ASSERT_TRUE(cold.solved());
    EXPECT_EQ(service.stats().persisted_entries, 1u);
  }
  ASSERT_EQ(cache_file_count(), 1u);

  // A fresh service over the same directory — the "restarted daemon" —
  // must answer the repeat from the reloaded cache, field for field.
  Service reborn(cached_options());
  EXPECT_EQ(reborn.stats().cache_entries, 1u);
  EXPECT_EQ(reborn.stats().persisted_entries, 1u);
  EXPECT_EQ(reborn.stats().persisted_corrupt, 0u);

  const ServiceResponse warm = reborn.submit(f).get();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.certified, cold.certified);
  EXPECT_EQ(warm.engine, cold.engine);
  EXPECT_EQ(warm.fingerprint.hi, cold.fingerprint.hi);
  EXPECT_EQ(warm.fingerprint.lo, cold.fingerprint.lo);
  EXPECT_EQ(warm.stats.samples, cold.stats.samples);
  EXPECT_EQ(warm.stats.repairs, cold.stats.repairs);
  EXPECT_EQ(warm.stats.counterexamples, cold.stats.counterexamples);
  EXPECT_EQ(warm.stats.aig_nodes_encoded, cold.stats.aig_nodes_encoded);
  ASSERT_NE(warm.functions, nullptr);
  EXPECT_EQ(warm.functions->roots().size(), cold.functions->roots().size());

  // The reloaded certificate must still import and certify.
  aig::Aig manager;
  const engine::ServiceResult result = reborn.solve(f, manager);
  ASSERT_TRUE(result.solved());
  EXPECT_EQ(dqbf::check_certificate(f, manager, result.vector).status,
            dqbf::CertificateStatus::kValid);
}

TEST_F(PersistedCache, UnrealizableVerdictPersists) {
  const dqbf::DqbfFormula f = unrealizable_formula();
  {
    Service service(cached_options());
    const ServiceResponse cold = service.submit(f).get();
    ASSERT_EQ(cold.status, core::SynthesisStatus::kUnrealizable);
  }
  Service reborn(cached_options());
  const ServiceResponse warm = reborn.submit(f).get();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.status, core::SynthesisStatus::kUnrealizable);
  EXPECT_EQ(warm.functions, nullptr);
}

TEST_F(PersistedCache, CorruptFilesAreSkippedNotFatal) {
  const dqbf::DqbfFormula f = testutil::paper_example();
  {
    Service service(cached_options());
    ASSERT_TRUE(service.submit(f).get().solved());
  }
  ASSERT_EQ(cache_file_count(), 1u);
  fs::path valid;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".m3c") valid = entry.path();
  }

  // Three corruptions: pure garbage, a truncated copy of a real entry,
  // and a real entry under the wrong fingerprint-derived name.
  {
    std::ofstream garbage(dir_ / "zz-garbage.m3c");
    garbage << "not a cache entry\n";
  }
  const std::string contents = read_file(valid);
  {
    std::ofstream truncated(dir_ / "zz-truncated.m3c");
    truncated << contents.substr(0, contents.size() / 3);
  }
  {
    std::ofstream misnamed(
        dir_ / "00000000000000000000000000000000-0.m3c");
    misnamed << contents;
  }

  Service reborn(cached_options());
  EXPECT_EQ(reborn.stats().cache_entries, 1u);
  EXPECT_EQ(reborn.stats().persisted_entries, 1u);
  EXPECT_EQ(reborn.stats().persisted_corrupt, 3u);
  const ServiceResponse warm = reborn.submit(f).get();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.solved());
}

TEST_F(PersistedCache, EvictionDeletesTheFile) {
  ServiceOptions options = cached_options();
  options.result_cache_capacity = 1;
  Service service(options);
  ASSERT_TRUE(service.submit(testutil::paper_example()).get().solved());
  EXPECT_EQ(cache_file_count(), 1u);
  // A second definitive result evicts the first from the LRU — and its
  // cache file must go with it, or restarts would resurrect the evicted
  // entry past the capacity bound.
  const ServiceResponse second =
      service.submit(testutil::identity_spec()).get();
  ASSERT_TRUE(second.solved());
  EXPECT_EQ(cache_file_count(), 1u);
  EXPECT_EQ(service.stats().persisted_entries, 1u);
  EXPECT_EQ(service.stats().cache_evictions, 1u);
}

// ---------------------------------------------------------------------------
// Daemon: retry with backoff, quarantine, journal recovery.
// ---------------------------------------------------------------------------

class DaemonChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("manthan3d_chaos_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::clear();
    fs::remove_all(dir_);
  }

  void write_request(const std::string& name, const dqbf::DqbfFormula& f) {
    std::ofstream out(dir_ / name);
    out << dqbf::to_dqdimacs_string(f);
  }

  void write_journal(const std::string& request_name,
                     std::uint64_t attempts) {
    fs::create_directories(dir_ / "journal");
    std::ofstream out(dir_ / "journal" / (request_name + ".journal"));
    out << "attempts " << attempts << "\n";
    out << "next_retry_ms 0\n";
  }

  DaemonOptions immediate_retry() {
    DaemonOptions options;
    options.queue_dir = dir_.string();
    options.retry_base_ms = 0.0;  // retries are eligible immediately
    return options;
  }

  fs::path dir_;
};

TEST_F(DaemonChaos, InjectedOomQuarantinesOnlyThatRequest) {
  // Three distinct requests; the alloc fault fires on the second
  // executed service job only (after=2, no `every`). With max_attempts=1
  // that request is quarantined on the spot — and the rest of the drain
  // must complete untouched.
  const std::uint64_t quarantined_before =
      counter_value("service_requests_quarantined_total");
  write_request("a.dqdimacs", testutil::paper_example());
  write_request("b.dqdimacs", testutil::identity_spec());
  dqbf::DqbfFormula skolem;
  skolem.add_universal(0);
  skolem.add_existential(1, {0});
  skolem.matrix().add_clause({cnf::pos(1), cnf::pos(0)});
  skolem.matrix().add_clause({cnf::neg(1), cnf::neg(0)});
  write_request("c.dqdimacs", skolem);

  fault::install("seed=1;service.job:alloc:after=2");
  Service service(single_manthan3());
  DaemonOptions options = immediate_retry();
  options.max_attempts = 1;
  const DrainReport report = drain_queue(service, options);

  EXPECT_EQ(report.processed, 2u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.retried, 0u);
  EXPECT_FALSE(report.stopped);
  EXPECT_TRUE(fs::exists(dir_ / "a.result.json"));
  EXPECT_FALSE(fs::exists(dir_ / "b.result.json"));
  EXPECT_TRUE(fs::exists(dir_ / "c.result.json"));
  EXPECT_TRUE(fs::exists(dir_ / "failed" / "b.dqdimacs"));
  EXPECT_TRUE(fs::exists(dir_ / "failed" / "b.dqdimacs.error.json"));
  EXPECT_FALSE(fs::exists(dir_ / "journal" / "b.dqdimacs.journal"));
  EXPECT_EQ(counter_value("service_requests_quarantined_total"),
            quarantined_before + 1);

  ASSERT_EQ(report.records.size(), 3u);
  const engine::RequestRecord& b = report.records[1];
  EXPECT_TRUE(b.quarantined);
  EXPECT_TRUE(b.internal_error);
  EXPECT_EQ(b.attempts, 1u);

  // The quarantined file names the cause.
  const std::string error_json =
      read_file(dir_ / "failed" / "b.dqdimacs.error.json");
  EXPECT_NE(error_json.find("quarantined"), std::string::npos);
}

TEST_F(DaemonChaos, TransientFailureRetriesThenSucceeds) {
  const std::uint64_t retried_before =
      counter_value("service_requests_retried_total");
  write_request("a.dqdimacs", testutil::paper_example());
  fault::install("seed=2;service.job:io:after=1");
  Service service(single_manthan3());
  const DaemonOptions options = immediate_retry();

  const DrainReport first = drain_queue(service, options);
  EXPECT_EQ(first.processed, 0u);
  EXPECT_EQ(first.retried, 1u);
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_TRUE(first.records[0].retried);
  EXPECT_TRUE(first.records[0].internal_error);
  EXPECT_EQ(first.records[0].attempts, 1u);
  EXPECT_FALSE(fs::exists(dir_ / "a.result.json"));
  EXPECT_TRUE(fs::exists(dir_ / "journal" / "a.dqdimacs.journal"));
  EXPECT_EQ(counter_value("service_requests_retried_total"),
            retried_before + 1);

  // The fault rule is exhausted; the journaled retry must run and win.
  const DrainReport second = drain_queue(service, options);
  EXPECT_EQ(second.processed, 1u);
  EXPECT_EQ(second.solved, 1u);
  ASSERT_EQ(second.records.size(), 1u);
  EXPECT_EQ(second.records[0].attempts, 2u);
  EXPECT_TRUE(fs::exists(dir_ / "a.result.json"));
  EXPECT_FALSE(fs::exists(dir_ / "journal" / "a.dqdimacs.journal"));
}

TEST_F(DaemonChaos, BackoffDefersRetryUntilDue) {
  write_request("a.dqdimacs", testutil::paper_example());
  fault::install("seed=3;service.job:io:after=1");
  Service service(single_manthan3());
  DaemonOptions options = immediate_retry();
  options.retry_base_ms = 1e7;  // hours: the retry can never be due here

  const DrainReport first = drain_queue(service, options);
  EXPECT_EQ(first.retried, 1u);

  const DrainReport second = drain_queue(service, options);
  EXPECT_EQ(second.processed, 0u);
  EXPECT_EQ(second.deferred, 1u);
  EXPECT_FALSE(second.stopped);  // a deferral must not wedge the drain
  ASSERT_EQ(second.records.size(), 1u);
  EXPECT_TRUE(second.records[0].deferred);
  EXPECT_TRUE(fs::exists(dir_ / "journal" / "a.dqdimacs.journal"));
  EXPECT_FALSE(fs::exists(dir_ / "a.result.json"));
}

TEST_F(DaemonChaos, ResultWriteFaultRollsBackAndRetries) {
  write_request("a.dqdimacs", testutil::paper_example());
  fault::install("seed=4;daemon.write:io:after=1");
  Service service(single_manthan3());
  const DaemonOptions options = immediate_retry();

  // The engine solved the request, but the result never became durable:
  // the drain must not count it as processed, and the journal must
  // schedule a re-run.
  const DrainReport first = drain_queue(service, options);
  EXPECT_EQ(first.processed, 0u);
  EXPECT_EQ(first.solved, 0u);
  EXPECT_EQ(first.retried, 1u);
  EXPECT_FALSE(fs::exists(dir_ / "a.result.json"));

  const DrainReport second = drain_queue(service, options);
  EXPECT_EQ(second.processed, 1u);
  EXPECT_EQ(second.solved, 1u);
  EXPECT_TRUE(second.records[0].cache_hit);  // re-run hits the tier-1
  EXPECT_TRUE(fs::exists(dir_ / "a.result.json"));
}

TEST_F(DaemonChaos, RequestReadFaultIsTransientNotMalformed) {
  write_request("a.dqdimacs", testutil::paper_example());
  fault::install("seed=5;daemon.read:io:after=1");
  Service service(single_manthan3());
  const DaemonOptions options = immediate_retry();

  const DrainReport first = drain_queue(service, options);
  EXPECT_EQ(first.failed, 0u);  // an I/O error is not a poisoned request
  EXPECT_EQ(first.retried, 1u);
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_FALSE(first.records[0].malformed);

  const DrainReport second = drain_queue(service, options);
  EXPECT_EQ(second.processed, 1u);
  EXPECT_EQ(second.solved, 1u);
}

TEST_F(DaemonChaos, ExhaustedJournalQuarantinesWithoutExecution) {
  // A journal left behind by three crashed executions (attempts ==
  // max_attempts): the next drain must quarantine without burning a
  // fourth execution on a request that kills the process.
  write_request("a.dqdimacs", testutil::paper_example());
  write_journal("a.dqdimacs", 3);
  Service service(single_manthan3());
  DaemonOptions options = immediate_retry();
  options.max_attempts = 3;

  const DrainReport report = drain_queue(service, options);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.processed, 0u);
  EXPECT_EQ(service.stats().requests, 0u);  // never reached the service
  EXPECT_TRUE(fs::exists(dir_ / "failed" / "a.dqdimacs"));
  EXPECT_FALSE(fs::exists(dir_ / "journal" / "a.dqdimacs.journal"));
}

TEST_F(DaemonChaos, JournalOffRestoresLegacyBehavior) {
  write_request("a.dqdimacs", testutil::paper_example());
  fault::install("seed=6;service.job:io:after=1:every=1:limit=0");
  Service service(single_manthan3());
  DaemonOptions options = immediate_retry();
  options.journal = false;

  // Without the journal a transient failure is recorded but nothing is
  // persisted: no journal dir, no quarantine, the request simply stays
  // in the queue for the next drain.
  const DrainReport report = drain_queue(service, options);
  EXPECT_EQ(report.processed, 0u);
  EXPECT_EQ(report.retried, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_TRUE(report.records[0].internal_error);
  EXPECT_FALSE(fs::exists(dir_ / "journal"));
  EXPECT_FALSE(fs::exists(dir_ / "failed"));
  EXPECT_TRUE(fs::exists(dir_ / "a.dqdimacs"));
}

TEST_F(DaemonChaos, RestartRerunsJournaledRequestOnceFromWarmCache) {
  // The full kill-and-restart story: daemon 1 answers the spec (and
  // persists the tier-1 entry), then "dies" mid-way through a duplicate
  // request — simulated by the intent journal it wrote before executing,
  // with no result file. The restarted daemon must re-run that request
  // exactly once and answer it from the persisted cache.
  const fs::path cache_dir = dir_ / "cache";
  ServiceOptions service_options = single_manthan3();
  service_options.cache_dir = cache_dir.string();

  write_request("a.dqdimacs", testutil::paper_example());
  {
    Service daemon1(service_options);
    const DrainReport warmup = drain_queue(daemon1, immediate_retry());
    ASSERT_EQ(warmup.solved, 1u);
    ASSERT_EQ(daemon1.stats().persisted_entries, 1u);
  }

  write_request("b.dqdimacs", testutil::paper_example());
  write_journal("b.dqdimacs", 1);  // intent written, execution never
                                   // finished, process gone

  Service daemon2(service_options);
  EXPECT_EQ(daemon2.stats().cache_entries, 1u);  // reloaded from disk
  const DrainReport report = drain_queue(daemon2, immediate_retry());
  EXPECT_EQ(report.processed, 1u);  // a.dqdimacs already has its result
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.cache_hits, 1u);
  ASSERT_EQ(report.records.size(), 1u);  // skipped requests get no record
  const engine::RequestRecord& b = report.records[0];
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(b.attempts, 2u);  // the journaled attempt plus this one
  EXPECT_TRUE(fs::exists(dir_ / "b.result.json"));
  EXPECT_FALSE(fs::exists(dir_ / "journal" / "b.dqdimacs.journal"));

  // Exactly once: a third drain has nothing left to do.
  const DrainReport done = drain_queue(daemon2, immediate_retry());
  EXPECT_EQ(done.processed, 0u);
  EXPECT_EQ(done.skipped, 2u);
}

}  // namespace
}  // namespace manthan
