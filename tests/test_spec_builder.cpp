// SpecBuilder front end: expression parsing, precedence, error handling,
// and end-to-end synthesis from a built spec.
#include <gtest/gtest.h>

#include "baselines/hqs_lite.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/spec_builder.hpp"

namespace manthan::dqbf {
namespace {

/// Build, solve with HqsLite, and return whether it was realizable (the
/// returned vector is always certified when present).
bool realizable(const DqbfFormula& f) {
  aig::Aig manager;
  baselines::HqsLite engine;
  const core::SynthesisResult result = engine.synthesize(f, manager);
  if (result.status == core::SynthesisStatus::kRealizable) {
    EXPECT_EQ(check_certificate(f, manager, result.vector).status,
              CertificateStatus::kValid);
    return true;
  }
  EXPECT_EQ(result.status, core::SynthesisStatus::kUnrealizable);
  return false;
}

TEST(SpecBuilder, DeclaresVariables) {
  SpecBuilder b;
  const Var x = b.add_universal("x");
  const Var y = b.add_existential("y", {"x"});
  EXPECT_NE(x, y);
  EXPECT_EQ(b.var("x"), x);
  EXPECT_EQ(b.var("y"), y);
}

TEST(SpecBuilder, RejectsDuplicatesAndUnknowns) {
  SpecBuilder b;
  b.add_universal("x");
  EXPECT_THROW(b.add_universal("x"), std::runtime_error);
  EXPECT_THROW(b.add_existential("y", {"nope"}), std::runtime_error);
  EXPECT_THROW(b.var("missing"), std::runtime_error);
  EXPECT_THROW(b.add_constraint("x & unknown"), std::runtime_error);
}

TEST(SpecBuilder, RejectsSyntaxErrors) {
  SpecBuilder b;
  b.add_universal("x");
  EXPECT_THROW(b.add_constraint("x &"), std::runtime_error);
  EXPECT_THROW(b.add_constraint("(x"), std::runtime_error);
  EXPECT_THROW(b.add_constraint("x x"), std::runtime_error);
  EXPECT_THROW(b.add_constraint("x @ x"), std::runtime_error);
  EXPECT_THROW(b.add_constraint(""), std::runtime_error);
}

TEST(SpecBuilder, IdentitySpecSynthesizes) {
  SpecBuilder b;
  b.add_universal("x");
  b.add_existential("y", {"x"});
  b.add_constraint("y <-> !x");
  EXPECT_TRUE(realizable(b.build()));
}

TEST(SpecBuilder, PrecedenceAndOverOr) {
  // x | y & z parses as x | (y & z): the spec ∀x,y,z ∃w. w <-> (x | y & z)
  // must be realizable with w exactly that function.
  SpecBuilder b;
  b.add_universal("x");
  b.add_universal("y");
  b.add_universal("z");
  b.add_existential("w", {"x", "y", "z"});
  b.add_constraint("w <-> (x | y & z)");
  // Pin the semantics with extra implications consistent only with the
  // intended precedence: x alone forces w.
  b.add_constraint("x -> w");
  EXPECT_TRUE(realizable(b.build()));
}

TEST(SpecBuilder, ImplicationIsRightAssociative) {
  // a -> b -> c == a -> (b -> c), which is satisfiable for all values
  // except a=1,b=1,c=0; as a constraint over universals only it is
  // falsifiable, so the spec must be unrealizable.
  SpecBuilder b;
  b.add_universal("a");
  b.add_universal("b");
  b.add_universal("c");
  b.add_constraint("a -> b -> c");
  EXPECT_FALSE(realizable(b.build()));
}

TEST(SpecBuilder, ConstantsAndNegation) {
  SpecBuilder b;
  b.add_universal("x");
  b.add_existential("y", {});
  b.add_constraint("y <-> !0");
  EXPECT_TRUE(realizable(b.build()));
}

TEST(SpecBuilder, PaperExampleThroughApi) {
  SpecBuilder b;
  b.add_universal("x1");
  b.add_universal("x2");
  b.add_universal("x3");
  b.add_existential("y1", {"x1"});
  b.add_existential("y2", {"x1", "x2"});
  b.add_existential("y3", {"x2", "x3"});
  b.add_constraint("x1 | y1");
  b.add_constraint("y2 <-> (y1 | !x2)");
  b.add_constraint("y3 <-> (x2 | x3)");
  EXPECT_EQ(b.num_constraints(), 3u);
  EXPECT_TRUE(realizable(b.build()));
}

TEST(SpecBuilder, XorSplitDependencyUnrealizable) {
  // y <-> xa ^ xb with y only seeing xa: False.
  SpecBuilder b;
  b.add_universal("xa");
  b.add_universal("xb");
  b.add_existential("y", {"xa"});
  b.add_constraint("y <-> (xa ^ xb)");
  EXPECT_FALSE(realizable(b.build()));
}

TEST(SpecBuilder, MultipleConstraintsAreConjoined) {
  SpecBuilder b;
  b.add_universal("x");
  b.add_existential("y", {"x"});
  b.add_constraint("x -> y");
  b.add_constraint("!x -> !y");  // together: y <-> x
  const DqbfFormula f = b.build();
  aig::Aig manager;
  baselines::HqsLite engine;
  const core::SynthesisResult result = engine.synthesize(f, manager);
  ASSERT_EQ(result.status, core::SynthesisStatus::kRealizable);
  // The synthesized function must be the identity on x.
  std::unordered_map<std::int32_t, bool> in{{b.var("x"), true}};
  EXPECT_TRUE(manager.evaluate(result.vector.functions[0], in));
  in[b.var("x")] = false;
  EXPECT_FALSE(manager.evaluate(result.vector.functions[0], in));
}

}  // namespace
}  // namespace manthan::dqbf
