// Cross-substrate consistency: the CDCL solver, the BDD engine, brute
// force, and the AIG simulator must agree on satisfiability, model
// counts, and function semantics — these checks catch bugs in any one
// engine by majority.
#include <gtest/gtest.h>

#include "aig/aig_cnf.hpp"
#include "aig/aig_sim.hpp"
#include "bdd/bdd.hpp"
#include "sampler/sampler.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace manthan {
namespace {

using cnf::Clause;
using cnf::CnfFormula;
using cnf::Lit;
using cnf::Var;

CnfFormula random_cnf(Var num_vars, std::size_t num_clauses,
                      std::size_t width, util::Rng& rng) {
  CnfFormula f(num_vars);
  for (std::size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (std::size_t k = 0; k < width; ++k) {
      clause.push_back(Lit(static_cast<Var>(rng.next_below(
                               static_cast<std::uint64_t>(num_vars))),
                           rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

/// Exact model count by exhaustive enumeration.
std::size_t brute_count(const CnfFormula& f) {
  std::size_t count = 0;
  for (std::uint64_t bits = 0; bits < (1ULL << f.num_vars()); ++bits) {
    cnf::Assignment a(static_cast<std::size_t>(f.num_vars()));
    for (Var v = 0; v < f.num_vars(); ++v) a.set(v, ((bits >> v) & 1) != 0);
    if (f.satisfied_by(a)) ++count;
  }
  return count;
}

/// Model count via the SAT solver with blocking clauses.
std::size_t solver_count(const CnfFormula& f) {
  sat::Solver s;
  if (!s.add_formula(f)) return 0;
  std::size_t count = 0;
  while (s.solve() == sat::Result::kSat) {
    ++count;
    Clause blocking;
    for (Var v = 0; v < f.num_vars(); ++v) {
      blocking.push_back(Lit(v, s.model().value(v)));
    }
    if (!s.add_clause(blocking)) break;
    if (count > 4096) break;  // safety net
  }
  return count;
}

struct CrossParams {
  Var num_vars;
  std::size_t num_clauses;
  std::size_t width;
};

class CrossCheck : public ::testing::TestWithParam<CrossParams> {};

TEST_P(CrossCheck, SatBddBruteForceAgree) {
  const CrossParams p = GetParam();
  util::Rng rng(0xfeed + p.num_vars * 17 + p.num_clauses);
  for (int round = 0; round < 15; ++round) {
    const CnfFormula f = random_cnf(p.num_vars, p.num_clauses, p.width, rng);

    const std::size_t exact = brute_count(f);

    // SAT solver: satisfiability + enumeration count.
    EXPECT_EQ(solver_count(f), exact);

    // BDD: satisfiability + algebraic count.
    bdd::Bdd b;
    const bdd::NodeId node = b.from_cnf(f);
    EXPECT_EQ(node != bdd::kFalseNode, exact > 0);
    EXPECT_DOUBLE_EQ(
        b.sat_count(node, static_cast<std::size_t>(f.num_vars())),
        static_cast<double>(exact));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CrossCheck,
    ::testing::Values(CrossParams{4, 6, 2}, CrossParams{6, 12, 3},
                      CrossParams{8, 20, 3}, CrossParams{10, 30, 3}));

TEST(CrossCheck, AigTseitinAgreesWithBdd) {
  // Random AIG cone: SAT-check of the Tseitin encoding vs BDD truth.
  util::Rng rng(0xabc);
  for (int round = 0; round < 15; ++round) {
    aig::Aig m;
    std::vector<aig::Ref> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(m.input(i));
    for (int g = 0; g < 25; ++g) {
      const aig::Ref a = pool[rng.next_below(pool.size())] ^
                         static_cast<aig::Ref>(rng.flip());
      const aig::Ref b = pool[rng.next_below(pool.size())] ^
                         static_cast<aig::Ref>(rng.flip());
      pool.push_back(m.and_gate(a, b));
    }
    const aig::Ref f = pool.back() ^ static_cast<aig::Ref>(rng.flip());

    // BDD of the same function via ite-decomposition of the AIG cone.
    bdd::Bdd b;
    std::unordered_map<std::uint32_t, bdd::NodeId> node_of;
    for (const std::uint32_t n : cone_topo_order(m, f)) {
      const aig::Aig::Node& node = m.node(n);
      if (n == 0) {
        node_of[n] = bdd::kFalseNode;
      } else if (node.input_id >= 0) {
        node_of[n] = b.var_node(node.input_id);
      } else {
        const bdd::NodeId f0 =
            aig::ref_complemented(node.fanin0)
                ? b.not_op(node_of[aig::ref_node(node.fanin0)])
                : node_of[aig::ref_node(node.fanin0)];
        const bdd::NodeId f1 =
            aig::ref_complemented(node.fanin1)
                ? b.not_op(node_of[aig::ref_node(node.fanin1)])
                : node_of[aig::ref_node(node.fanin1)];
        node_of[n] = b.and_op(f0, f1);
      }
    }
    bdd::NodeId bdd_f = node_of[aig::ref_node(f)];
    if (aig::ref_complemented(f)) bdd_f = b.not_op(bdd_f);

    // Satisfiability of the function via Tseitin + CDCL.
    cnf::CnfFormula enc(6);
    const Lit root = aig::encode_cone(m, f, enc);
    enc.add_unit(root);
    sat::Solver s;
    const bool ok = s.add_formula(enc);
    const bool sat = ok && s.solve() == sat::Result::kSat;
    EXPECT_EQ(sat, bdd_f != bdd::kFalseNode);

    // Tautology: simulate vs BDD.
    EXPECT_EQ(aig::is_tautology(m, f), bdd_f == bdd::kTrueNode);
  }
}

TEST(CrossCheck, SamplerModelsVerifiedBySolverAndBdd) {
  util::Rng rng(0x5a5a);
  const CnfFormula f = random_cnf(8, 16, 3, rng);
  bdd::Bdd b;
  const bdd::NodeId node = b.from_cnf(f);
  sampler::SamplerOptions options;
  options.num_samples = 50;
  sampler::Sampler sampler(options);
  for (const cnf::Assignment& a : sampler.sample(f, {})) {
    std::unordered_map<std::int32_t, bool> in;
    for (Var v = 0; v < f.num_vars(); ++v) in[v] = a.value(v);
    EXPECT_TRUE(b.evaluate(node, in));
  }
}

}  // namespace
}  // namespace manthan
