// HqspreLite preprocessor: each transformation, False detection,
// reconstruction of full Henkin vectors, and equisatisfiability sweeps.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "baselines/hqs_lite.hpp"
#include "dqbf/certificate.hpp"
#include "preprocess/hqspre_lite.hpp"
#include "workloads/workloads.hpp"

namespace manthan::preprocess {
namespace {

using cnf::neg;
using cnf::pos;
using dqbf::Var;

TEST(HqspreLite, RemovesTautologies) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(0), neg(0), pos(1)});
  f.matrix().add_clause({pos(1), pos(0)});
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_FALSE(r.proven_false);
  EXPECT_EQ(r.stats.tautologies_removed, 1u);
}

TEST(HqspreLite, UniversalReductionDropsIndependentLiterals) {
  // Clause (x1 ∨ y) where H_y = {x0}: y cannot depend on x1, so the
  // clause must hold with x1 = 0 — reduce to (y), then propagate.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0});
  f.matrix().add_clause({pos(1), pos(2)});
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_FALSE(r.proven_false);
  EXPECT_GE(r.stats.universal_literals_reduced, 1u);
  EXPECT_GE(r.stats.units_propagated, 1u);
  // y forced to 1; no existentials remain.
  ASSERT_EQ(r.eliminated.size(), 1u);
  EXPECT_EQ(r.eliminated[0].first, Var{2});
  EXPECT_TRUE(r.eliminated[0].second);
}

TEST(HqspreLite, PureUniversalClauseIsFalse) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0});
  f.matrix().add_clause({pos(0), pos(1)});  // falsified at x0=x1=0
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_TRUE(r.proven_false);
}

TEST(HqspreLite, UniversalUnitIsFalse) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(0)});
  f.matrix().add_clause({pos(1), neg(0)});
  EXPECT_TRUE(HqspreLite().run(f).proven_false);
}

TEST(HqspreLite, UnitPropagationEliminatesExistential) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.add_existential(2, {0});
  f.matrix().add_clause({pos(1)});
  f.matrix().add_clause({neg(1), pos(2), pos(0)});
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_FALSE(r.proven_false);
  // y1 = 1 eliminated; the second clause loses ¬y1 and keeps (y2 ∨ x0)...
  // which pure-literal elimination then resolves for y2.
  bool y1_eliminated = false;
  for (const auto& [v, value] : r.eliminated) {
    if (v == 1) {
      y1_eliminated = true;
      EXPECT_TRUE(value);
    }
  }
  EXPECT_TRUE(y1_eliminated);
}

TEST(HqspreLite, ConflictingUnitsAreFalse) {
  dqbf::DqbfFormula f;
  f.add_existential(0, {});
  f.matrix().add_clause({pos(0)});
  f.matrix().add_clause({neg(0)});
  EXPECT_TRUE(HqspreLite().run(f).proven_false);
}

TEST(HqspreLite, UnitChainConflictIsFalse) {
  // (y0), (¬y0 ∨ y1), (¬y0 ∨ ¬y1): propagating y0 leaves the
  // conflicting units (y1) and (¬y1) inside the SAME round — the queue
  // must catch the clash instead of recording both forced values.
  dqbf::DqbfFormula f;
  f.add_existential(0, {});
  f.add_existential(1, {});
  f.matrix().add_clause({pos(0)});
  f.matrix().add_clause({neg(0), pos(1)});
  f.matrix().add_clause({neg(0), neg(1)});
  EXPECT_TRUE(HqspreLite().run(f).proven_false);
}

TEST(HqspreLite, ChainedUnitsPropagateToFixpointInOneRound) {
  // Implication chain y0 → y1 → y2 → y3 seeded by the unit (y0). The
  // in-round propagation queue must drain the whole chain without
  // spending one outer round per unit (the pre-fix behavior).
  dqbf::DqbfFormula f;
  for (Var v = 0; v < 4; ++v) f.add_existential(v, {});
  f.matrix().add_clause({pos(0)});
  f.matrix().add_clause({neg(0), pos(1)});
  f.matrix().add_clause({neg(1), pos(2)});
  f.matrix().add_clause({neg(2), pos(3)});
  const PreprocessResult r = HqspreLite().run(f);
  ASSERT_FALSE(r.proven_false);
  EXPECT_EQ(r.stats.units_propagated, 4u);
  // One working round plus the fixpoint-confirming round.
  EXPECT_LE(r.stats.rounds, 2u);
  ASSERT_EQ(r.eliminated.size(), 4u);
  for (const auto& [v, value] : r.eliminated) EXPECT_TRUE(value) << v;
  EXPECT_EQ(r.simplified.matrix().num_clauses(), 0u);
}

TEST(HqspreLite, SelfSubsumingResolutionStrengthens) {
  // (y2 ∨ y3) self-subsumes (¬y2 ∨ y3 ∨ y4) on pivot y2, strengthening
  // it to (y3 ∨ y4). Both polarities of y3/y4 occur so pure-literal
  // elimination cannot erase the evidence first.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  for (Var v = 2; v <= 4; ++v) f.add_existential(v, {0, 1});
  f.matrix().add_clause({pos(2), pos(3)});
  f.matrix().add_clause({neg(2), pos(3), pos(4)});
  f.matrix().add_clause({neg(3), neg(4)});
  const PreprocessResult r = HqspreLite().run(f);
  ASSERT_FALSE(r.proven_false);
  EXPECT_GE(r.stats.literals_strengthened, 1u);
  for (std::size_t c = 0; c < r.simplified.matrix().num_clauses(); ++c) {
    EXPECT_LE(r.simplified.matrix().clause(c).size(), 2u);
  }
}

TEST(HqspreLite, PureLiteralElimination) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  // y appears only positively.
  f.matrix().add_clause({pos(1), pos(0)});
  f.matrix().add_clause({pos(1), neg(0)});
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_FALSE(r.proven_false);
  EXPECT_GE(r.stats.pure_literals_eliminated +
                r.stats.units_propagated,
            1u);
  EXPECT_EQ(r.simplified.matrix().num_clauses(), 0u);
}

TEST(HqspreLite, SubsumptionRemovesSupersets) {
  // Both polarities of y2/y3 occur so pure-literal elimination cannot
  // fire first; the superset clause must fall to subsumption.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.add_existential(3, {0, 1});
  f.matrix().add_clause({pos(2), neg(3)});
  f.matrix().add_clause({pos(2), neg(3), pos(0)});
  f.matrix().add_clause({neg(2), pos(3)});
  const PreprocessResult r = HqspreLite().run(f);
  EXPECT_FALSE(r.proven_false);
  EXPECT_GE(r.stats.clauses_subsumed, 1u);
  EXPECT_EQ(r.simplified.matrix().num_clauses(), 2u);
}

TEST(HqspreLite, ReconstructionYieldsValidVector) {
  // Preprocess, solve the residual with HqsLite, reconstruct, certify
  // against the ORIGINAL formula.
  const dqbf::DqbfFormula original = workloads::gen_pec({6, 2, 2, 2, 10, 31});
  const PreprocessResult pre = HqspreLite().run(original);
  ASSERT_FALSE(pre.proven_false);

  aig::Aig manager;
  baselines::HqsLite engine;
  const core::SynthesisResult solved =
      engine.synthesize(pre.simplified, manager);
  ASSERT_EQ(solved.status, core::SynthesisStatus::kRealizable);

  const std::vector<aig::Ref> full = HqspreLite::reconstruct(
      original, pre, solved.vector.functions);
  dqbf::HenkinVector vector{full};
  EXPECT_EQ(dqbf::check_certificate(original, manager, vector).status,
            dqbf::CertificateStatus::kValid);
}

TEST(HqspreLite, PreservesTruthOnGeneratedFamilies) {
  // Equisatisfiability sweep: preprocess + solve == solve directly.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const dqbf::DqbfFormula original =
        testutil::tiny_planted(seed);
    const PreprocessResult pre = HqspreLite().run(original);
    ASSERT_FALSE(pre.proven_false) << "planted instances are True";

    aig::Aig manager;
    baselines::HqsLite engine;
    const core::SynthesisResult solved =
        engine.synthesize(pre.simplified, manager);
    ASSERT_EQ(solved.status, core::SynthesisStatus::kRealizable);
    const std::vector<aig::Ref> full = HqspreLite::reconstruct(
        original, pre, solved.vector.functions);
    dqbf::HenkinVector vector{full};
    EXPECT_EQ(dqbf::check_certificate(original, manager, vector).status,
              dqbf::CertificateStatus::kValid);
  }
}

TEST(HqspreLite, FalseFamilyDetectedOrPreserved) {
  const dqbf::DqbfFormula original = workloads::gen_unrealizable(
      {2, true, 9});
  const PreprocessResult pre = HqspreLite().run(original);
  if (!pre.proven_false) {
    aig::Aig manager;
    baselines::HqsLite engine;
    EXPECT_EQ(engine.synthesize(pre.simplified, manager).status,
              core::SynthesisStatus::kUnrealizable);
  }
}

TEST(HqspreLite, IdempotentOnFixpoint) {
  const dqbf::DqbfFormula original =
      testutil::tiny_planted(77);
  const PreprocessResult once = HqspreLite().run(original);
  ASSERT_FALSE(once.proven_false);
  const PreprocessResult twice = HqspreLite().run(once.simplified);
  EXPECT_FALSE(twice.proven_false);
  EXPECT_EQ(twice.simplified.matrix().num_clauses(),
            once.simplified.matrix().num_clauses());
  EXPECT_TRUE(twice.eliminated.empty());
}

}  // namespace
}  // namespace manthan::preprocess
