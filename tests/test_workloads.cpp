// Workload generators: well-formedness, True-by-construction guarantees,
// determinism, and suite assembly.
#include <gtest/gtest.h>

#include <set>

#include "aig/aig_sim.hpp"
#include "sat/solver.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {
namespace {

using cnf::Var;

/// Exhaustive ground-truth DQBF check for tiny instances: enumerate all
/// Henkin function tables and test whether some vector satisfies φ for
/// every X. Only feasible for a handful of variables.
bool brute_force_true(const dqbf::DqbfFormula& f) {
  const auto& ex = f.existentials();
  const auto& universals = f.universals();
  const std::size_t nx = universals.size();
  // Total table bits across all existentials.
  std::size_t table_bits = 0;
  for (const auto& e : ex) table_bits += 1ULL << e.deps.size();
  if (table_bits > 16 || nx > 10) ADD_FAILURE() << "instance too large";
  for (std::uint64_t tables = 0; tables < (1ULL << table_bits); ++tables) {
    bool all_x_ok = true;
    for (std::uint64_t xbits = 0; xbits < (1ULL << nx) && all_x_ok;
         ++xbits) {
      cnf::Assignment a(
          static_cast<std::size_t>(f.matrix().num_vars()));
      for (std::size_t i = 0; i < nx; ++i) {
        a.set(universals[i], ((xbits >> i) & 1) != 0);
      }
      // Apply each function table.
      std::size_t offset = 0;
      for (const auto& e : ex) {
        std::size_t index = 0;
        for (std::size_t d = 0; d < e.deps.size(); ++d) {
          if (a.value(e.deps[d])) index |= 1ULL << d;
        }
        a.set(e.var, ((tables >> (offset + index)) & 1) != 0);
        offset += 1ULL << e.deps.size();
      }
      if (!f.matrix().satisfied_by(a)) all_x_ok = false;
    }
    if (all_x_ok) return true;
  }
  return false;
}

TEST(Workloads, PlantedIsWellFormed) {
  const dqbf::DqbfFormula f = gen_planted({8, 4, 3, 5, 30, 42});
  EXPECT_TRUE(f.validate().empty());
  EXPECT_EQ(f.num_universals(), 8u);
  EXPECT_EQ(f.num_existentials(), 4u);
  EXPECT_GT(f.matrix().num_clauses(), 0u);
}

TEST(Workloads, PlantedMatrixIsSatisfiable) {
  const dqbf::DqbfFormula f = gen_planted({8, 4, 3, 5, 30, 43});
  sat::Solver s;
  ASSERT_TRUE(s.add_formula(f.matrix()));
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Workloads, PlantedIsTrueByConstruction) {
  // Small instance checked against exhaustive ground truth.
  const dqbf::DqbfFormula f = gen_planted({4, 2, 2, 3, 12, 7});
  EXPECT_TRUE(brute_force_true(f));
}

TEST(Workloads, PlantedDeterministicPerSeed) {
  const dqbf::DqbfFormula a = gen_planted({6, 3, 2, 4, 20, 5});
  const dqbf::DqbfFormula b = gen_planted({6, 3, 2, 4, 20, 5});
  ASSERT_EQ(a.matrix().num_clauses(), b.matrix().num_clauses());
  for (std::size_t i = 0; i < a.matrix().num_clauses(); ++i) {
    EXPECT_EQ(a.matrix().clause(i), b.matrix().clause(i));
  }
  const dqbf::DqbfFormula c = gen_planted({6, 3, 2, 4, 20, 6});
  bool differs = a.matrix().num_clauses() != c.matrix().num_clauses();
  for (std::size_t i = 0;
       !differs && i < a.matrix().num_clauses(); ++i) {
    differs = !(a.matrix().clause(i) == c.matrix().clause(i));
  }
  EXPECT_TRUE(differs);
}

TEST(Workloads, PecIsWellFormedAndSat) {
  const dqbf::DqbfFormula f = gen_pec({7, 2, 2, 3, 12, 17});
  EXPECT_TRUE(f.validate().empty());
  sat::Solver s;
  ASSERT_TRUE(s.add_formula(f.matrix()));
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Workloads, PecBlackboxDepsAreSubsetsOfInputs) {
  const dqbf::DqbfFormula f = gen_pec({7, 2, 3, 3, 12, 19});
  // First 3 existentials are the blackboxes with small dependency sets;
  // the Tseitin auxiliaries depend on everything.
  ASSERT_GE(f.num_existentials(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(f.existentials()[i].deps.size(), 3u);
  }
}

TEST(Workloads, ControllerObservableVariantShape) {
  const dqbf::DqbfFormula f = gen_controller({4, 2, 2, true, 6, 23});
  EXPECT_TRUE(f.validate().empty());
  EXPECT_EQ(f.num_universals(), 6u);  // 4 state + 2 disturbance
  sat::Solver s;
  ASSERT_TRUE(s.add_formula(f.matrix()));
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Workloads, SuccinctSatHasEmptyDeps) {
  const dqbf::DqbfFormula f = gen_succinct_sat({12, 3.0, 29});
  EXPECT_TRUE(f.validate().empty());
  EXPECT_EQ(f.num_universals(), 0u);
  for (const auto& e : f.existentials()) EXPECT_TRUE(e.deps.empty());
  // Planted satisfiable: the matrix must be SAT.
  sat::Solver s;
  ASSERT_TRUE(s.add_formula(f.matrix()));
  EXPECT_EQ(s.solve(), sat::Result::kSat);
}

TEST(Workloads, XorChainEqualityVariantIsTrue) {
  const dqbf::DqbfFormula f = gen_xor_chain({1, false, 1});
  EXPECT_TRUE(f.validate().empty());
  EXPECT_TRUE(brute_force_true(f));
}

TEST(Workloads, XorChainSharedVariantIsTrue) {
  const dqbf::DqbfFormula f = gen_xor_chain({1, true, 1});
  EXPECT_TRUE(brute_force_true(f));
}

TEST(Workloads, XorChainHasIncomparableWindows) {
  const dqbf::DqbfFormula f = gen_xor_chain({2, false, 1});
  ASSERT_EQ(f.num_existentials(), 4u);
  EXPECT_FALSE(f.deps_subset(0, 1));
  EXPECT_FALSE(f.deps_subset(1, 0));
}

TEST(Workloads, UnrealizableIsFalse) {
  const dqbf::DqbfFormula f = gen_unrealizable({1, false, 1});
  EXPECT_TRUE(f.validate().empty());
  EXPECT_FALSE(brute_force_true(f));
}

TEST(Workloads, StandardSuiteComposition) {
  const std::vector<Instance> suite = standard_suite({1, 2023});
  EXPECT_GT(suite.size(), 30u);
  std::set<std::string> names;
  std::set<std::string> families;
  for (const Instance& inst : suite) {
    EXPECT_TRUE(inst.formula.validate().empty()) << inst.name;
    names.insert(inst.name);
    families.insert(inst.family);
  }
  EXPECT_EQ(names.size(), suite.size()) << "instance names must be unique";
  // All seven families represented.
  EXPECT_EQ(families.size(), 7u);
}

TEST(Workloads, StandardSuiteScalesUp) {
  const std::size_t small = standard_suite({1, 2023}).size();
  const std::size_t large = standard_suite({2, 2023}).size();
  EXPECT_GT(large, small);
}

TEST(Workloads, StandardSuiteDeterministic) {
  const auto a = standard_suite({1, 99});
  const auto b = standard_suite({1, 99});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].formula.matrix().num_clauses(),
              b[i].formula.matrix().num_clauses());
  }
}

}  // namespace
}  // namespace manthan::workloads
