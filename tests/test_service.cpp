// The synthesis service: any-of cancellation composition, the tier-1
// result cache (duplicate and isomorphic requests answered without
// solving, warm results field-for-field identical to cold ones), the
// tier-2 analysis cache across near-duplicate specs, in-flight
// coalescing, admission modes, shutdown semantics, the service-routed
// portfolio runner, and the directory-queue daemon front end.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "test_util.hpp"
#include "dqbf/dqdimacs.hpp"
#include "dqbf/fingerprint.hpp"
#include "engine/daemon.hpp"
#include "engine/service.hpp"
#include "portfolio/runner.hpp"
#include "util/cancel.hpp"
#include "workloads/workloads.hpp"

namespace manthan::engine {
namespace {

namespace fs = std::filesystem;

/// Nested-dependency planted instance Manthan3 chews on for ~10 s —
/// long enough that a mid-run stop is guaranteed to interrupt it.
dqbf::DqbfFormula slow_for_manthan3() {
  workloads::PlantedParams params{20, 8, 6, 8, 300, 3};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 16;
  return workloads::gen_planted(params);
}

/// All deterministic counters of a run (wall-clock fields excluded; the
/// tier-2 hit counters are compared separately because warm runs skip
/// the work the counters count).
void expect_same_counters(const core::SynthesisStats& a,
                          const core::SynthesisStats& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.unique_defined, b.unique_defined);
  EXPECT_EQ(a.learned_candidates, b.learned_candidates);
  EXPECT_EQ(a.counterexamples, b.counterexamples);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.repair_checks, b.repair_checks);
  EXPECT_EQ(a.maxsat_calls, b.maxsat_calls);
  EXPECT_EQ(a.cones_encoded, b.cones_encoded);
  EXPECT_EQ(a.cones_reused, b.cones_reused);
  EXPECT_EQ(a.aig_nodes_encoded, b.aig_nodes_encoded);
  EXPECT_EQ(a.activations_retired, b.activations_retired);
  EXPECT_EQ(a.verify_vars, b.verify_vars);
  EXPECT_EQ(a.verify_clauses_retired, b.verify_clauses_retired);
  EXPECT_EQ(a.phi_vars, b.phi_vars);
  EXPECT_EQ(a.phi_clauses_retired, b.phi_clauses_retired);
  EXPECT_EQ(a.inprocess_runs, b.inprocess_runs);
  EXPECT_EQ(a.eliminated_vars, b.eliminated_vars);
  EXPECT_EQ(a.subsumed_clauses, b.subsumed_clauses);
  EXPECT_EQ(a.vivified_literals, b.vivified_literals);
  EXPECT_EQ(a.remapped_vars, b.remapped_vars);
  EXPECT_EQ(a.samples_appended, b.samples_appended);
  EXPECT_EQ(a.refit_rounds, b.refit_rounds);
  EXPECT_EQ(a.refit_candidates, b.refit_candidates);
}

ServiceOptions single_engine_service(std::size_t workers = 1) {
  ServiceOptions options;
  options.workers = workers;
  options.admission = ServiceOptions::Admission::kSingle;
  options.single_engine = EngineKind::kManthan3;
  return options;
}

// --- any-of cancellation composition ---------------------------------------

TEST(AnyOfCancelToken, OwnFlag) {
  util::AnyOfCancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(AnyOfCancelToken, EitherParentFires) {
  util::CancelToken a;
  util::CancelToken b;
  util::AnyOfCancelToken token(&a, &b);
  EXPECT_FALSE(token.cancelled());
  a.cancel();
  EXPECT_TRUE(token.cancelled());
  a.reset();
  b.cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(AnyOfCancelToken, ChildCancelDoesNotPropagateUp) {
  // The race winner's stop must not cancel the enclosing service.
  util::CancelToken parent;
  util::AnyOfCancelToken token(&parent);
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(AnyOfCancelToken, NullParentsAreIgnored) {
  util::AnyOfCancelToken token(nullptr, nullptr);
  EXPECT_FALSE(token.cancelled());
  util::CancelToken parent;
  util::AnyOfCancelToken one_sided(nullptr, &parent);
  parent.cancel();
  EXPECT_TRUE(one_sided.cancelled());
}

TEST(AnyOfCancelToken, ComposesThroughBasePointer) {
  // Deadline and the solvers poll through const CancelToken*; the
  // virtual dispatch must reach the composed check.
  util::CancelToken parent;
  util::AnyOfCancelToken child(&parent);
  const util::CancelToken* base = &child;
  EXPECT_FALSE(base->cancelled());
  parent.cancel();
  EXPECT_TRUE(base->cancelled());
}

// --- tier-1 result cache ----------------------------------------------------

TEST(Service, DuplicateRequestHitsCache) {
  Service service(single_engine_service());
  const dqbf::DqbfFormula f = testutil::paper_example();
  aig::Aig manager;
  const ServiceResult cold = service.solve(f, manager);
  ASSERT_TRUE(cold.solved());
  EXPECT_FALSE(cold.response.cache_hit);

  const ServiceResult warm = service.solve(f, manager);
  ASSERT_TRUE(warm.solved());
  EXPECT_TRUE(warm.response.cache_hit);
  EXPECT_EQ(warm.response.fingerprint, cold.response.fingerprint);
  EXPECT_EQ(warm.response.engine, cold.response.engine);
  EXPECT_EQ(warm.response.status, cold.response.status);
  expect_same_counters(warm.response.stats, cold.response.stats);
  // Same strashed manager: the imported cones are literally the same
  // nodes, so a warm result is indistinguishable from re-solving.
  EXPECT_EQ(warm.vector.functions, cold.vector.functions);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.tier1_hits, 1u);
  EXPECT_EQ(stats.tier1_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(Service, IsomorphicRequestHitsCache) {
  // Same spec under renamed variables and shuffled clauses: the
  // canonical fingerprint routes it to the cached result.
  Service service(single_engine_service());
  aig::Aig manager;
  const dqbf::DqbfFormula f = testutil::paper_example();
  ASSERT_TRUE(service.solve(f, manager).solved());

  dqbf::DqbfFormula renamed;
  renamed.matrix().ensure_vars(f.matrix().num_vars());
  // Rotate variable names: v -> (v + 2) mod 6 maps roles consistently
  // only if rotation keeps role sets; instead swap within roles:
  // universals 0<->2, existentials 3<->5.
  const auto perm = [](cnf::Var v) -> cnf::Var {
    if (v == 0) return 2;
    if (v == 2) return 0;
    if (v == 3) return 5;
    if (v == 5) return 3;
    return v;
  };
  for (const cnf::Var u : f.universals()) renamed.add_universal(perm(u));
  for (const auto& e : f.existentials()) {
    std::vector<cnf::Var> deps;
    for (const cnf::Var d : e.deps) deps.push_back(perm(d));
    renamed.add_existential(perm(e.var), std::move(deps));
  }
  const auto& clauses = f.matrix().clauses();
  for (std::size_t i = clauses.size(); i-- > 0;) {
    cnf::Clause mapped;
    for (const cnf::Lit l : clauses[i]) {
      mapped.emplace_back(perm(l.var()), l.negated());
    }
    renamed.matrix().add_clause(mapped);
  }

  const ServiceResult warm = service.solve(renamed, manager);
  EXPECT_TRUE(warm.response.cache_hit);
  EXPECT_TRUE(warm.solved());
}

TEST(Service, WarmMatchesColdAcrossServices) {
  // The determinism guard: a fresh service (no caches) run on the same
  // spec reproduces the cached run's counters field-for-field, because
  // per-request seeds derive from the fingerprint. The fixture makes
  // Manthan3 do real work (sampling, counterexamples, refits) yet solve
  // fast; small_planted would hit the engine's incompleteness, which is
  // a non-definitive verdict and deliberately not cached.
  workloads::PlantedParams params{10, 5, 3, 5, 60, 2};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 8;
  const dqbf::DqbfFormula f = workloads::gen_planted(params);
  aig::Aig manager_a;
  Service cached_service(single_engine_service());
  const ServiceResult first = cached_service.solve(f, manager_a);
  ASSERT_TRUE(first.solved());
  EXPECT_GT(first.response.stats.counterexamples, 0u);  // non-trivial run
  const ServiceResult warm = cached_service.solve(f, manager_a);
  ASSERT_TRUE(warm.response.cache_hit);

  ServiceOptions cacheless = single_engine_service();
  cacheless.result_cache = false;
  cacheless.analysis_cache = false;
  Service cold_service(cacheless);
  aig::Aig manager_b;
  const ServiceResult cold = cold_service.solve(f, manager_b);
  EXPECT_FALSE(cold.response.cache_hit);

  EXPECT_EQ(warm.response.status, cold.response.status);
  EXPECT_EQ(warm.response.certified, cold.response.certified);
  EXPECT_EQ(warm.response.engine, cold.response.engine);
  expect_same_counters(first.response.stats, cold.response.stats);
  expect_same_counters(warm.response.stats, cold.response.stats);
  EXPECT_EQ(warm.vector.functions.size(), cold.vector.functions.size());
}

TEST(Service, UnrealizableVerdictsAreCached) {
  workloads::UnrealizableParams params;
  params.extension_detectable = true;
  const dqbf::DqbfFormula f = workloads::gen_unrealizable(params);
  Service service(single_engine_service());
  aig::Aig manager;
  const ServiceResult cold = service.solve(f, manager);
  EXPECT_EQ(cold.response.status, core::SynthesisStatus::kUnrealizable);
  const ServiceResult warm = service.solve(f, manager);
  EXPECT_EQ(warm.response.status, core::SynthesisStatus::kUnrealizable);
  EXPECT_TRUE(warm.response.cache_hit);
  EXPECT_EQ(warm.response.functions, nullptr);
}

TEST(Service, ForcedEnginesCacheSeparately) {
  Service service(single_engine_service(2));
  const dqbf::DqbfFormula f = testutil::paper_example();
  aig::Aig manager;
  SolveOptions hqs;
  hqs.engine = EngineKind::kHqsLite;
  SolveOptions m3;
  m3.engine = EngineKind::kManthan3;

  EXPECT_FALSE(service.solve(f, manager, hqs).response.cache_hit);
  EXPECT_FALSE(service.solve(f, manager, m3).response.cache_hit);
  const ServiceResult warm_hqs = service.solve(f, manager, hqs);
  EXPECT_TRUE(warm_hqs.response.cache_hit);
  EXPECT_EQ(warm_hqs.response.engine, EngineKind::kHqsLite);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tier1_misses, 2u);
  EXPECT_EQ(stats.tier1_hits, 1u);
  EXPECT_EQ(stats.cache_entries, 2u);
}

TEST(Service, CapacityBoundEvictsLru) {
  ServiceOptions options = single_engine_service();
  options.result_cache_capacity = 2;
  Service service(options);
  aig::Aig manager;
  const dqbf::DqbfFormula a = testutil::tiny_planted(1);
  const dqbf::DqbfFormula b = testutil::tiny_planted(2);
  const dqbf::DqbfFormula c = testutil::tiny_planted(3);
  service.solve(a, manager);
  service.solve(b, manager);
  service.solve(c, manager);  // evicts a (least recently used)
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_entries, 2u);
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_FALSE(service.solve(a, manager).response.cache_hit);  // re-solved
  EXPECT_TRUE(service.solve(c, manager).response.cache_hit);
}

// --- tier-2 analysis cache --------------------------------------------------

TEST(Service, NearDuplicateSharesUniqueDefVerdicts) {
  // Widen one existential's window: the spec fingerprint changes (tier-1
  // miss) but the other existentials' (matrix, y, H) triples — and so
  // their Padoa verdicts — carry over through the analysis cache.
  const dqbf::DqbfFormula f = testutil::paper_example();
  dqbf::DqbfFormula edited;
  edited.matrix().ensure_vars(f.matrix().num_vars());
  for (const cnf::Var u : f.universals()) edited.add_universal(u);
  const auto& exs = f.existentials();
  for (std::size_t i = 0; i < exs.size(); ++i) {
    std::vector<cnf::Var> deps = exs[i].deps;
    if (i == 0) deps.push_back(2);
    edited.add_existential(exs[i].var, std::move(deps));
  }
  for (const auto& clause : f.matrix().clauses()) {
    edited.matrix().add_clause(clause);
  }

  Service service(single_engine_service());
  aig::Aig manager;
  const ServiceResult first = service.solve(f, manager);
  ASSERT_TRUE(first.solved());
  EXPECT_EQ(first.response.stats.analysis_unique_hits, 0u);

  const ServiceResult second = service.solve(edited, manager);
  EXPECT_FALSE(second.response.cache_hit);  // different spec
  ASSERT_TRUE(second.solved());
  EXPECT_GE(second.response.stats.analysis_unique_hits, 1u);
  EXPECT_GE(service.stats().analysis.unique_hits, 1u);
}

// --- cancellation and shutdown ----------------------------------------------

TEST(Service, PreCancelledRequestIsNotCached) {
  Service service(single_engine_service());
  util::CancelToken token;
  token.cancel();
  SolveOptions options;
  options.cancel = &token;
  aig::Aig manager;
  const ServiceResult cancelled =
      service.solve(testutil::paper_example(), manager, options);
  EXPECT_EQ(cancelled.response.status, core::SynthesisStatus::kTimeout);
  EXPECT_TRUE(cancelled.response.cancelled);
  EXPECT_EQ(service.stats().cache_entries, 0u);
  // The spec is still solvable afresh — the truncated run left nothing.
  const ServiceResult solved =
      service.solve(testutil::paper_example(), manager);
  EXPECT_FALSE(solved.response.cache_hit);
  EXPECT_TRUE(solved.solved());
}

TEST(Service, ShutdownStopsInFlightRequest) {
  Service service(single_engine_service());
  const std::shared_future<ServiceResponse> future =
      service.submit(slow_for_manthan3());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  service.shutdown();
  const ServiceResponse response = future.get();  // must not hang
  EXPECT_EQ(response.status, core::SynthesisStatus::kTimeout);
  EXPECT_TRUE(response.cancelled);
  EXPECT_EQ(service.stats().cache_entries, 0u);
  EXPECT_TRUE(service.shutting_down());
  // Requests after shutdown still get answered (fast, cancelled).
  const ServiceResponse late =
      service.submit(testutil::paper_example()).get();
  EXPECT_TRUE(late.cancelled);
}

TEST(Service, DestructorDrainsQueuedRequests) {
  // Queue more work than workers, then destroy the service immediately:
  // every future must still resolve (the pool drains; queued jobs see
  // the shutdown token at their first poll).
  std::vector<std::shared_future<ServiceResponse>> futures;
  {
    Service service(single_engine_service());
    for (int i = 0; i < 4; ++i) {
      futures.push_back(service.submit(slow_for_manthan3()));
    }
    service.shutdown();
  }
  for (auto& future : futures) {
    const ServiceResponse response = future.get();
    EXPECT_TRUE(response.cancelled);
  }
}

TEST(Service, ConcurrentDuplicatesCoalesce) {
  ServiceOptions options = single_engine_service();
  options.default_time_limit_seconds = 0.5;
  Service service(options);
  const dqbf::DqbfFormula f = slow_for_manthan3();
  const auto first = service.submit(f);
  const auto second = service.submit(f);
  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.coalesced, 1u);
  const ServiceResponse r1 = first.get();
  const ServiceResponse r2 = second.get();
  EXPECT_TRUE(r1.coalesced);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(Service, RequestsWithTokensDoNotCoalesce) {
  ServiceOptions options = single_engine_service();
  options.default_time_limit_seconds = 0.5;
  Service service(options);
  const dqbf::DqbfFormula f = slow_for_manthan3();
  util::CancelToken token_a;
  util::CancelToken token_b;
  SolveOptions sa;
  sa.cancel = &token_a;
  SolveOptions sb;
  sb.cancel = &token_b;
  const auto first = service.submit(f, sa);
  const auto second = service.submit(f, sb);
  token_b.cancel();  // must only stop the second request
  const ServiceResponse r2 = second.get();
  EXPECT_TRUE(r2.cancelled);
  const ServiceResponse r1 = first.get();
  EXPECT_FALSE(r1.coalesced);
  EXPECT_EQ(service.stats().coalesced, 0u);
  EXPECT_EQ(service.stats().completed, 2u);
}

// --- admission --------------------------------------------------------------

TEST(Service, AutoAdmissionRacesWhenIdle) {
  ServiceOptions options;
  options.workers = 2;
  options.admission = ServiceOptions::Admission::kAuto;
  Service service(options);
  aig::Aig manager;
  const ServiceResult result =
      service.solve(testutil::paper_example(), manager);
  ASSERT_TRUE(result.solved());
  EXPECT_TRUE(result.response.raced);
  EXPECT_EQ(service.stats().races, 1u);
}

TEST(Service, ForcedEngineRunsSingle) {
  ServiceOptions options;
  options.workers = 2;
  options.admission = ServiceOptions::Admission::kRace;
  Service service(options);
  SolveOptions solve_options;
  solve_options.engine = EngineKind::kHqsLite;
  aig::Aig manager;
  const ServiceResult result =
      service.solve(testutil::paper_example(), manager, solve_options);
  ASSERT_TRUE(result.solved());
  EXPECT_FALSE(result.response.raced);
  EXPECT_EQ(result.response.engine, EngineKind::kHqsLite);
  EXPECT_EQ(service.stats().single_runs, 1u);
}

// --- service-routed portfolio runner ----------------------------------------

TEST(Runner, SuiteTwiceThroughServiceHitsTier1) {
  std::vector<workloads::Instance> suite;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    suite.push_back({"tiny" + std::to_string(seed), "planted",
                     testutil::tiny_planted(seed)});
  }
  portfolio::RunnerOptions runner_options;
  runner_options.per_instance_seconds = 30.0;
  const portfolio::Runner runner(runner_options);
  Service service(single_engine_service(2));

  const std::vector<portfolio::RunRecord> first =
      runner.run_suite(suite, {EngineKind::kManthan3}, service);
  ASSERT_EQ(first.size(), suite.size());
  for (const auto& record : first) {
    EXPECT_TRUE(record.solved()) << record.instance;
    EXPECT_FALSE(record.cache_hit) << record.instance;
  }

  const std::vector<portfolio::RunRecord> second =
      runner.run_suite(suite, {EngineKind::kManthan3}, service);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].cache_hit) << second[i].instance;
    EXPECT_EQ(second[i].status, first[i].status);
    EXPECT_EQ(second[i].certified, first[i].certified);
    expect_same_counters(second[i].stats, first[i].stats);
  }
  EXPECT_GE(service.stats().tier1_hits, suite.size());
}

// --- directory-queue daemon -------------------------------------------------

class DaemonQueue : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("manthan3d_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_request(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name);
    out << text;
  }

  fs::path dir_;
};

TEST_F(DaemonQueue, DrainsCertifiesAndCachesDuplicates) {
  const std::string text =
      dqbf::to_dqdimacs_string(testutil::paper_example());
  write_request("a.dqdimacs", text);
  write_request("b.dqdimacs", text);  // duplicate: tier-1 hit
  write_request("broken.dqdimacs", "p cnf oops\n");

  Service service(single_engine_service(2));
  DaemonOptions options;
  options.queue_dir = dir_.string();
  const DrainReport report = drain_queue(service, options);

  EXPECT_EQ(report.processed, 2u);
  EXPECT_EQ(report.solved, 2u);
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.stopped);
  EXPECT_TRUE(fs::exists(dir_ / "a.result.json"));
  EXPECT_TRUE(fs::exists(dir_ / "b.result.json"));
  EXPECT_TRUE(fs::exists(dir_ / "broken.result.json"));

  // The result JSON names the fingerprint and embeds the certificate.
  std::ifstream in(dir_ / "a.result.json");
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"status\": \"realizable\""), std::string::npos);
  EXPECT_NE(json.find("\"certified\": true"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \""), std::string::npos);
  EXPECT_NE(json.find("functions_blif"), std::string::npos);

  // Idempotent: a second drain skips everything.
  const DrainReport again = drain_queue(service, options);
  EXPECT_EQ(again.processed, 0u);
  EXPECT_EQ(again.skipped, 3u);
}

TEST_F(DaemonQueue, PreCancelledStopDrainsNothing) {
  write_request("a.dqdimacs",
                dqbf::to_dqdimacs_string(testutil::paper_example()));
  Service service(single_engine_service());
  util::CancelToken stop;
  stop.cancel();
  DaemonOptions options;
  options.queue_dir = dir_.string();
  options.stop = &stop;
  const DrainReport report = drain_queue(service, options);
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.processed, 0u);
  EXPECT_FALSE(fs::exists(dir_ / "a.result.json"));
}

TEST_F(DaemonQueue, MidRequestStopLeavesNoResultBehind) {
  // Stop the daemon while the engine is deep in a long solve: the
  // request must come back cancelled, write no result file (so a later
  // drain retries it), and the drain must report stopping early.
  write_request("slow.dqdimacs",
                dqbf::to_dqdimacs_string(slow_for_manthan3()));
  Service service(single_engine_service());
  util::CancelToken stop;
  DaemonOptions options;
  options.queue_dir = dir_.string();
  options.stop = &stop;

  DrainReport report;
  std::thread drainer(
      [&]() { report = drain_queue(service, options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.cancel();
  drainer.join();

  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.processed, 0u);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_TRUE(report.records[0].cancelled);
  EXPECT_FALSE(fs::exists(dir_ / "slow.result.json"));

  // The queue is intact: clearing the stop lets a later drain finish
  // the request (under a budget so the test stays bounded).
  stop.reset();
  options.time_limit_seconds = 0.5;
  const DrainReport retry = drain_queue(service, options);
  EXPECT_EQ(retry.processed + retry.failed, 1u);
}

TEST_F(DaemonQueue, MaxRequestsBoundsTheDrain) {
  const std::string text =
      dqbf::to_dqdimacs_string(testutil::paper_example());
  write_request("a.dqdimacs", text);
  write_request("b.dqdimacs", text);
  Service service(single_engine_service());
  DaemonOptions options;
  options.queue_dir = dir_.string();
  options.max_requests = 1;
  const DrainReport report = drain_queue(service, options);
  EXPECT_EQ(report.processed, 1u);
  EXPECT_TRUE(report.stopped);
}

}  // namespace
}  // namespace manthan::engine
