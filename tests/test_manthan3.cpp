// The Manthan3 engine: end-to-end synthesis on hand-crafted and generated
// DQBFs, False detection, the documented incompleteness, option knobs, and
// the soundness invariant (everything returned certifies).
#include <gtest/gtest.h>

#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::core {
namespace {

using cnf::neg;
using cnf::pos;
using cnf::Var;
using testutil::expect_certified;

SynthesisResult run(const dqbf::DqbfFormula& f, aig::Aig& manager,
                    Manthan3Options options = {}) {
  if (options.time_limit_seconds == 0.0) options.time_limit_seconds = 30.0;
  Manthan3 engine(options);
  return engine.synthesize(f, manager);
}

TEST(Manthan3, PaperExampleSynthesizes) {
  const dqbf::DqbfFormula f = testutil::paper_example();

  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  expect_certified(f, manager, result);
}

TEST(Manthan3, SkolemCaseIsHandled) {
  // Plain ∀x∃y (y <-> ¬x): Henkin generalizes Skolem.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(1), pos(0)});
  f.matrix().add_clause({neg(1), neg(0)});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  expect_certified(f, manager, result);
  // The function must be ¬x.
  std::unordered_map<std::int32_t, bool> in{{0, true}};
  EXPECT_FALSE(manager.evaluate(result.vector.functions[0], in));
  in[0] = false;
  EXPECT_TRUE(manager.evaluate(result.vector.functions[0], in));
}

TEST(Manthan3, DetectsExtensionUnrealizable) {
  // y must equal both x0 and x1: for x0 != x1 no model exists, which the
  // extension check (Algorithm 1, line 13) refutes definitively.
  workloads::UnrealizableParams params;
  params.num_constraints = 1;
  params.extension_detectable = true;
  params.seed = 7;
  const dqbf::DqbfFormula f = workloads::gen_unrealizable(params);
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_EQ(result.status, SynthesisStatus::kUnrealizable);
}

TEST(Manthan3, XorUnrealizableEndsIncomplete) {
  // y ↔ x0 xor x1 with H = {x0} is False, but every X extends to a model,
  // so Manthan3's False test never fires — the documented outcome is
  // kIncomplete (repair gets stuck), never a wrong "realizable".
  workloads::UnrealizableParams params;
  params.num_constraints = 1;
  params.extension_detectable = false;
  params.seed = 7;
  const dqbf::DqbfFormula f = workloads::gen_unrealizable(params);
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_TRUE(result.status == SynthesisStatus::kIncomplete ||
              result.status == SynthesisStatus::kLimit)
      << "got " << static_cast<int>(result.status);
}

TEST(Manthan3, DetectsUnsatMatrixAsUnrealizable) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(1)});
  f.matrix().add_clause({neg(1)});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_EQ(result.status, SynthesisStatus::kUnrealizable);
}

TEST(Manthan3, EmptyDependencySetsAreConstants) {
  // Succinct-SAT shape: functions are constants.
  const dqbf::DqbfFormula f = workloads::gen_succinct_sat({8, 3.0, 5});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  expect_certified(f, manager, result);
  for (const aig::Ref fn : result.vector.functions) {
    EXPECT_TRUE(manager.support(fn).empty());
  }
}

TEST(Manthan3, NoExistentialsTautologyMatrix) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.matrix().add_clause({pos(0), neg(0)});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_EQ(result.status, SynthesisStatus::kRealizable);
  EXPECT_TRUE(result.vector.functions.empty());
}

TEST(Manthan3, NoExistentialsFalsifiableMatrix) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.matrix().add_clause({pos(0)});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_EQ(result.status, SynthesisStatus::kUnrealizable);
}

TEST(Manthan3, XorChainEventuallyResolvedOrIncomplete) {
  // The paper's §5 family: either a certified vector or the documented
  // incomplete outcome — never a wrong answer.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const dqbf::DqbfFormula f = workloads::gen_xor_chain({2, false, seed});
    aig::Aig manager;
    Manthan3Options options;
    options.seed = seed;
    const SynthesisResult result = run(f, manager, options);
    if (result.status == SynthesisStatus::kRealizable) {
      expect_certified(f, manager, result);
    } else {
      EXPECT_TRUE(result.status == SynthesisStatus::kIncomplete ||
                  result.status == SynthesisStatus::kLimit)
          << "unexpected status " << static_cast<int>(result.status);
    }
  }
}

TEST(Manthan3, RepairLoopFixesBadCandidates) {
  // XOR-with-shared forces non-trivial functions; sampling alone rarely
  // nails them, so repair must do real work — and the result certifies.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({1, true, 3});
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  if (result.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager, result);
  } else {
    EXPECT_EQ(result.status, SynthesisStatus::kIncomplete);
  }
}

TEST(Manthan3, FinalFunctionsRespectHenkinSupport) {
  const dqbf::DqbfFormula f = testutil::small_planted(11, 24);
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  ASSERT_EQ(result.status, SynthesisStatus::kRealizable);
  for (std::size_t i = 0; i < result.vector.functions.size(); ++i) {
    const auto support = manager.support(result.vector.functions[i]);
    const auto& deps = f.existentials()[i].deps;
    for (const std::int32_t id : support) {
      EXPECT_TRUE(std::binary_search(deps.begin(), deps.end(),
                                     static_cast<Var>(id)))
          << "function " << i << " uses variable outside its Henkin set";
    }
  }
}

TEST(Manthan3, UniqueExtractionShortcutsLearning) {
  // Fully defined instance: y0 <-> x0&x1, y1 <-> x0|x1.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.add_existential(3, {0, 1});
  f.matrix().add_clause({neg(2), pos(0)});
  f.matrix().add_clause({neg(2), pos(1)});
  f.matrix().add_clause({pos(2), neg(0), neg(1)});
  f.matrix().add_clause({neg(3), pos(0), pos(1)});
  f.matrix().add_clause({pos(3), neg(0)});
  f.matrix().add_clause({pos(3), neg(1)});
  aig::Aig manager;
  Manthan3Options options;
  options.use_unique_extraction = true;
  const SynthesisResult result = run(f, manager, options);
  expect_certified(f, manager, result);
  EXPECT_EQ(result.stats.unique_defined, 2u);
  EXPECT_EQ(result.stats.counterexamples, 0u);
}

TEST(Manthan3, WorksWithUniqueExtractionDisabled) {
  const dqbf::DqbfFormula f = workloads::gen_pec({6, 2, 2, 2, 10, 3});
  aig::Aig manager;
  Manthan3Options options;
  options.use_unique_extraction = false;
  const SynthesisResult result = run(f, manager, options);
  expect_certified(f, manager, result);
  EXPECT_EQ(result.stats.unique_defined, 0u);
}

TEST(Manthan3, TimeoutIsReported) {
  const dqbf::DqbfFormula f = workloads::gen_planted({14, 8, 6, 8, 60, 5});
  aig::Aig manager;
  Manthan3Options options;
  options.time_limit_seconds = 1e-4;  // expire immediately
  Manthan3 engine(options);
  const SynthesisResult result = engine.synthesize(f, manager);
  EXPECT_TRUE(result.status == SynthesisStatus::kTimeout ||
              result.status == SynthesisStatus::kRealizable);
}

TEST(Manthan3, StatsArepopulated) {
  const dqbf::DqbfFormula f = testutil::small_planted(21);
  aig::Aig manager;
  const SynthesisResult result = run(f, manager);
  EXPECT_GT(result.stats.samples, 0u);
  EXPECT_GT(result.stats.total_seconds, 0.0);
  if (result.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager, result);
    EXPECT_EQ(result.vector.functions.size(), f.num_existentials());
  } else {
    // A True instance may still defeat the incomplete repair procedure.
    EXPECT_NE(result.status, SynthesisStatus::kUnrealizable);
  }
}

TEST(Manthan3, PackedLearningMatchesRowwiseOracleEndToEnd) {
  // packed_learning only changes the split-counting machinery; the trees
  // are bit-identical, so the *entire* synthesis trajectory — functions,
  // counterexamples, repairs, refits — must match field-for-field.
  for (const std::uint64_t seed : {5ull, 23ull, 71ull}) {
    const dqbf::DqbfFormula f = testutil::small_planted(seed);
    Manthan3Options packed_options;
    packed_options.time_limit_seconds = 30.0;
    packed_options.packed_learning = true;
    Manthan3Options rowwise_options = packed_options;
    rowwise_options.packed_learning = false;
    aig::Aig packed_manager;
    const SynthesisResult packed =
        Manthan3(packed_options).synthesize(f, packed_manager);
    aig::Aig rowwise_manager;
    const SynthesisResult rowwise =
        Manthan3(rowwise_options).synthesize(f, rowwise_manager);
    ASSERT_EQ(packed.status, rowwise.status) << "seed " << seed;
    EXPECT_EQ(packed.vector.functions, rowwise.vector.functions)
        << "seed " << seed;
    EXPECT_EQ(packed.stats.samples, rowwise.stats.samples);
    EXPECT_EQ(packed.stats.counterexamples, rowwise.stats.counterexamples);
    EXPECT_EQ(packed.stats.repairs, rowwise.stats.repairs);
    EXPECT_EQ(packed.stats.repair_checks, rowwise.stats.repair_checks);
    EXPECT_EQ(packed.stats.refit_rounds, rowwise.stats.refit_rounds);
    EXPECT_EQ(packed.stats.refit_candidates, rowwise.stats.refit_candidates);
    EXPECT_EQ(packed.stats.samples_appended, rowwise.stats.samples_appended);
  }
}

TEST(Manthan3, SampleReuseStaysSoundAndCertified) {
  // Counterexample-heavy nested-dependency instance: reuse appends
  // samples and refits candidates mid-run; whatever the outcome, any
  // kRealizable answer must certify, and the reuse counters move.
  workloads::PlantedParams params{12, 6, 4, 6, 80, 7};
  params.nested_deps = true;
  params.dep_size_max = 10;
  const dqbf::DqbfFormula f = workloads::gen_planted(params);
  Manthan3Options options;
  options.time_limit_seconds = 30.0;
  options.sample_reuse = true;
  aig::Aig manager;
  const SynthesisResult result = run(f, manager, options);
  if (result.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager, result);
  }
  if (result.stats.counterexamples > 0) {
    EXPECT_GT(result.stats.samples_appended, 0u);
  }
  // And the reuse-disabled run also stays sound on the same instance.
  Manthan3Options no_reuse = options;
  no_reuse.sample_reuse = false;
  aig::Aig manager2;
  const SynthesisResult baseline = run(f, manager2, no_reuse);
  if (baseline.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager2, baseline);
  }
  EXPECT_EQ(baseline.stats.samples_appended, 0u);
  EXPECT_EQ(baseline.stats.refit_rounds, 0u);
}

TEST(Manthan3, SolverMaintenanceFiresAndStaysCertified) {
  // Inprocessing + compaction of the persistent verify/φ solvers on a
  // per-counterexample cadence: the engine answer must be unchanged and
  // certified, and the maintenance counters must move.
  workloads::PlantedParams params{12, 6, 4, 6, 80, 7};
  params.nested_deps = true;
  params.dep_size_max = 10;
  const dqbf::DqbfFormula f = workloads::gen_planted(params);
  Manthan3Options options;
  options.time_limit_seconds = 30.0;
  options.inprocess = true;
  options.inprocess_interval = 1;  // fire on every counterexample
  // Starve the learner so the first candidates are wrong and the
  // verify/repair loop actually runs.
  options.sampler.num_samples = 4;
  options.sampler.probe_samples = 4;
  options.use_unique_extraction = false;
  aig::Aig manager;
  const SynthesisResult result = run(f, manager, options);
  if (result.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager, result);
  }
  // Deterministic at this seed: the nested-dependency instance drives
  // the repair loop, so maintenance must actually have fired.
  ASSERT_GT(result.stats.counterexamples, 0u);
  EXPECT_GT(result.stats.inprocess_runs, 0u);

  // Maintenance off: counters stay zero, answer still sound.
  Manthan3Options off = options;
  off.inprocess = false;
  aig::Aig manager2;
  const SynthesisResult baseline = run(f, manager2, off);
  if (baseline.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager2, baseline);
  }
  EXPECT_EQ(baseline.stats.inprocess_runs, 0u);
  EXPECT_EQ(baseline.stats.eliminated_vars, 0u);
  EXPECT_EQ(baseline.stats.remapped_vars, 0u);
  // Sanitizer builds can blow the wall-clock budget; only compare
  // verdicts when both runs finished within it.
  if (result.status != SynthesisStatus::kTimeout &&
      baseline.status != SynthesisStatus::kTimeout) {
    EXPECT_EQ(result.status, baseline.status);
  }
}

// Soundness property sweep: across many generated instances and seeds,
// every kRealizable answer certifies and every planted-True family is
// never declared unrealizable.
struct SoundnessCase {
  int family;  // 0 planted, 1 pec, 2 succinct, 3 xor
  std::uint64_t seed;
};

class Manthan3Soundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(Manthan3Soundness, NeverReturnsWrongAnswer) {
  const SoundnessCase param = GetParam();
  dqbf::DqbfFormula f;
  bool known_true = true;
  switch (param.family) {
    case 0:
      f = workloads::gen_planted({7, 4, 3, 4, 20, param.seed});
      break;
    case 1:
      f = workloads::gen_pec({6, 2, 2, 2, 8, param.seed});
      break;
    case 2:
      f = workloads::gen_succinct_sat({10, 3.0, param.seed});
      break;
    default:
      f = workloads::gen_xor_chain({2, param.seed % 2 == 0, param.seed});
      break;
  }
  aig::Aig manager;
  Manthan3Options options;
  options.seed = param.seed * 31 + 7;
  const SynthesisResult result = run(f, manager, options);
  if (result.status == SynthesisStatus::kRealizable) {
    const dqbf::CertificateResult cert =
        dqbf::check_certificate(f, manager, result.vector);
    EXPECT_EQ(cert.status, dqbf::CertificateStatus::kValid);
  }
  if (known_true) {
    EXPECT_NE(result.status, SynthesisStatus::kUnrealizable)
        << "declared a True instance False";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Manthan3Soundness,
    ::testing::Values(SoundnessCase{0, 1}, SoundnessCase{0, 2},
                      SoundnessCase{0, 3}, SoundnessCase{1, 1},
                      SoundnessCase{1, 2}, SoundnessCase{2, 1},
                      SoundnessCase{2, 2}, SoundnessCase{3, 1},
                      SoundnessCase{3, 2}, SoundnessCase{3, 3}));

}  // namespace
}  // namespace manthan::core
