// Runtime-dispatched SIMD kernels: every compiled tier must be bit-identical
// to the scalar reference — pinned at three levels: raw kernels over random
// word ranges (including empty and non-lane-multiple tails), the packed
// consumers (dtree fitting, simulate_matrix, fingerprints), and whole
// Manthan3::synthesize trajectories forced per tier (serial and 4-worker).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "cnf/sample_matrix.hpp"
#include "core/manthan3.hpp"
#include "dtree/decision_tree.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace manthan::util::simd {
namespace {

/// RAII tier override: forces `tier` for the scope, restores on exit.
class TierGuard {
 public:
  explicit TierGuard(Tier tier) : previous_(set_active_tier_for_testing(tier)) {}
  ~TierGuard() { set_active_tier_for_testing(previous_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  Tier previous_;
};

std::vector<Tier> vector_tiers() {
  std::vector<Tier> tiers;
  for (const Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

std::vector<std::uint64_t> random_words(std::size_t n, util::Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next();
  return words;
}

// Lengths straddling every tail case: empty, sub-lane, exact AVX2 lane (4),
// exact AVX-512 lane (8), lane+tail, and multi-lane.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 100};

TEST(SimdKernels, VectorTiersMatchScalarReference) {
  const Kernels& ref = kernels_for(Tier::kScalar);
  for (const Tier tier : vector_tiers()) {
    const Kernels& k = kernels_for(tier);
    util::Rng rng(0x51u + static_cast<std::uint64_t>(tier));
    for (const std::size_t n : kLengths) {
      for (int round = 0; round < 8; ++round) {
        const std::vector<std::uint64_t> a = random_words(n, rng);
        const std::vector<std::uint64_t> b = random_words(n, rng);
        const std::vector<std::uint64_t> c = random_words(n, rng);

        EXPECT_EQ(k.popcount(a.data(), n), ref.popcount(a.data(), n));
        EXPECT_EQ(k.popcount_xor(a.data(), b.data(), n),
                  ref.popcount_xor(a.data(), b.data(), n));

        std::size_t total = 1, pos = 1, ref_total = 2, ref_pos = 2;
        k.count_node(a.data(), b.data(), n, &total, &pos);
        ref.count_node(a.data(), b.data(), n, &ref_total, &ref_pos);
        EXPECT_EQ(total, ref_total);
        EXPECT_EQ(pos, ref_pos);

        std::size_t hi = 1, hi_pos = 1, ref_hi = 2, ref_hi_pos = 2;
        k.count_split(a.data(), b.data(), c.data(), n, &hi, &hi_pos);
        ref.count_split(a.data(), b.data(), c.data(), n, &ref_hi,
                        &ref_hi_pos);
        EXPECT_EQ(hi, ref_hi);
        EXPECT_EQ(hi_pos, ref_hi_pos);

        std::vector<std::uint64_t> hi_out(n), lo_out(n);
        std::vector<std::uint64_t> ref_hi_out(n), ref_lo_out(n);
        k.split_masks(a.data(), b.data(), hi_out.data(), lo_out.data(), n);
        ref.split_masks(a.data(), b.data(), ref_hi_out.data(),
                        ref_lo_out.data(), n);
        EXPECT_EQ(hi_out, ref_hi_out);
        EXPECT_EQ(lo_out, ref_lo_out);

        for (const std::uint64_t inv_a : {0ULL, ~0ULL}) {
          for (const std::uint64_t inv_b : {0ULL, ~0ULL}) {
            for (const std::uint64_t inv_out : {0ULL, ~0ULL}) {
              std::vector<std::uint64_t> dst(n), ref_dst(n);
              k.combine(dst.data(), a.data(), inv_a, b.data(), inv_b,
                        inv_out, n);
              ref.combine(ref_dst.data(), a.data(), inv_a, b.data(), inv_b,
                          inv_out, n);
              EXPECT_EQ(dst, ref_dst);
            }
          }
          std::vector<std::uint64_t> dst(n), ref_dst(n);
          k.xor_const(dst.data(), a.data(), inv_a, n);
          ref.xor_const(ref_dst.data(), a.data(), inv_a, n);
          EXPECT_EQ(dst, ref_dst);
        }
      }
    }
  }
}

TEST(SimdKernels, CombineAndXorConstSupportAliasing) {
  // simulate_matrix writes gate outputs over their own scratch slots.
  for (const Tier tier : vector_tiers()) {
    const Kernels& k = kernels_for(tier);
    const Kernels& ref = kernels_for(Tier::kScalar);
    util::Rng rng(91);
    for (const std::size_t n : {5u, 16u, 33u}) {
      const std::vector<std::uint64_t> a = random_words(n, rng);
      const std::vector<std::uint64_t> b = random_words(n, rng);
      std::vector<std::uint64_t> expected(n);
      ref.combine(expected.data(), a.data(), ~0ULL, b.data(), 0, ~0ULL, n);
      std::vector<std::uint64_t> dst = a;
      k.combine(dst.data(), dst.data(), ~0ULL, b.data(), 0, ~0ULL, n);
      EXPECT_EQ(dst, expected);
      dst = a;
      k.xor_const(dst.data(), dst.data(), ~0ULL, n);
      std::vector<std::uint64_t> flipped(n);
      ref.xor_const(flipped.data(), a.data(), ~0ULL, n);
      EXPECT_EQ(dst, flipped);
    }
  }
}

TEST(SimdKernels, ScalarReferenceGroundTruth) {
  // Pin the scalar table itself against naive bit loops so the vector
  // tiers are not merely self-consistent with a broken reference.
  const Kernels& ref = kernels_for(Tier::kScalar);
  util::Rng rng(7);
  const std::size_t n = 11;
  const std::vector<std::uint64_t> a = random_words(n, rng);
  const std::vector<std::uint64_t> b = random_words(n, rng);
  std::size_t naive_pop = 0, naive_xor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int bit = 0; bit < 64; ++bit) {
      naive_pop += (a[i] >> bit) & 1;
      naive_xor += ((a[i] ^ b[i]) >> bit) & 1;
    }
  }
  EXPECT_EQ(ref.popcount(a.data(), n), naive_pop);
  EXPECT_EQ(ref.popcount_xor(a.data(), b.data(), n), naive_xor);
}

TEST(SimdDispatch, ResolveTierParsesOverrides) {
  const Tier best = best_supported_tier();
  EXPECT_EQ(resolve_tier(nullptr), best);
  EXPECT_EQ(resolve_tier(""), best);
  EXPECT_EQ(resolve_tier("unknown-tier"), best);
  EXPECT_EQ(resolve_tier("scalar"), Tier::kScalar);
  // Requests above the supported set clamp down, never up.
  EXPECT_LE(static_cast<int>(resolve_tier("avx2")),
            static_cast<int>(Tier::kAvx2));
  EXPECT_LE(static_cast<int>(resolve_tier("avx512")), static_cast<int>(best));
  if (tier_supported(Tier::kAvx2)) {
    EXPECT_EQ(resolve_tier("avx2"), Tier::kAvx2);
  }
  if (tier_supported(Tier::kAvx512)) {
    EXPECT_EQ(resolve_tier("avx512"), Tier::kAvx512);
  }
}

TEST(SimdDispatch, SetActiveTierForTestingRoundTrips) {
  const Tier original = active_tier();
  {
    TierGuard guard(Tier::kScalar);
    EXPECT_EQ(active_tier(), Tier::kScalar);
    EXPECT_EQ(&kernels(), &kernels_for(Tier::kScalar));
  }
  EXPECT_EQ(active_tier(), original);
}

TEST(SimdHelpers, FingerprintChainMatchesSplitmixLoop) {
  util::Rng rng(23);
  const std::vector<std::uint64_t> words = random_words(19, rng);
  std::uint64_t expected = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t w : words) {
    expected = util::splitmix64(expected ^ w);
  }
  EXPECT_EQ(fingerprint_chain(0x9e3779b97f4a7c15ULL, words.data(),
                              words.size()),
            expected);
  EXPECT_EQ(fingerprint_chain(42, words.data(), 0), 42u);
}

TEST(SimdHelpers, CollectSetBitsAppendsEveryIndexInOrder) {
  util::Rng rng(31);
  const std::vector<std::uint64_t> words = random_words(9, rng);
  std::vector<std::uint32_t> out{12345};  // pre-existing content survives
  collect_set_bits(words.data(), words.size(), out);
  std::vector<std::uint32_t> expected{12345};
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (std::uint32_t bit = 0; bit < 64; ++bit) {
      if ((words[w] >> bit) & 1) {
        expected.push_back(static_cast<std::uint32_t>(w * 64) + bit);
      }
    }
  }
  EXPECT_EQ(out, expected);
}

TEST(SimdAlignment, AlignedVectorIsCacheLineAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<std::uint64_t> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignBytes, 0u)
        << "n = " << n;
  }
}

// --- forced-tier differentials over the packed consumers -------------------

cnf::SampleMatrix random_matrix(std::size_t num_vars, std::size_t samples,
                                util::Rng& rng) {
  cnf::SampleMatrix m(num_vars);
  for (std::size_t s = 0; s < samples; ++s) {
    cnf::Assignment a(num_vars);
    for (std::size_t v = 0; v < num_vars; ++v) {
      a.set(static_cast<cnf::Var>(v), rng.flip());
    }
    m.append(a);
  }
  return m;
}

aig::Ref random_cone(aig::Aig& m, int inputs, int gates, util::Rng& rng) {
  std::vector<aig::Ref> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(m.input(i));
  for (int g = 0; g < gates; ++g) {
    const aig::Ref a = pool[rng.next_below(pool.size())] ^
                       static_cast<aig::Ref>(rng.flip());
    const aig::Ref b = pool[rng.next_below(pool.size())] ^
                       static_cast<aig::Ref>(rng.flip());
    pool.push_back(m.and_gate(a, b));
  }
  return pool.back() ^ static_cast<aig::Ref>(rng.flip());
}

TEST(SimdDifferential, FittedTreesAreBitIdenticalAcrossTiers) {
  if (vector_tiers().empty()) GTEST_SKIP() << "no vector tier on this CPU";
  util::Rng rng(57);
  // 300 samples x 17 vars crosses word boundaries; several tie-break seeds.
  const cnf::SampleMatrix m = random_matrix(17, 300, rng);
  std::vector<cnf::Var> features;
  for (cnf::Var v = 0; v < 16; ++v) features.push_back(v);
  for (const std::uint64_t seed : {0ull, 9ull, 41ull}) {
    dtree::DtreeOptions options;
    options.seed = seed;
    TierGuard scalar_guard(Tier::kScalar);
    const dtree::DecisionTree reference =
        dtree::DecisionTree::fit(m, features, 16, options);
    for (const Tier tier : vector_tiers()) {
      TierGuard guard(tier);
      const dtree::DecisionTree tree =
          dtree::DecisionTree::fit(m, features, 16, options);
      EXPECT_EQ(tree.nodes(), reference.nodes())
          << "tier " << tier_name(tier) << " seed " << seed;
    }
  }
}

TEST(SimdDifferential, SimulateMatrixWordsAreBitIdenticalAcrossTiers) {
  if (vector_tiers().empty()) GTEST_SKIP() << "no vector tier on this CPU";
  util::Rng rng(63);
  for (int round = 0; round < 5; ++round) {
    aig::Aig manager;
    const aig::Ref root = random_cone(manager, 12, 80, rng);
    // 1100 samples: crosses the 16-word simulation block boundary.
    const cnf::SampleMatrix m = random_matrix(12, 1100, rng);
    std::vector<std::uint64_t> reference;
    {
      TierGuard guard(Tier::kScalar);
      reference = aig::simulate_matrix(manager, root, m);
    }
    for (const Tier tier : vector_tiers()) {
      TierGuard guard(tier);
      EXPECT_EQ(aig::simulate_matrix(manager, root, m), reference)
          << "tier " << tier_name(tier) << " round " << round;
    }
  }
}

TEST(SimdDifferential, FingerprintsAreTierIndependent) {
  // fingerprint_chain has exactly one implementation, but the feeder code
  // paths (append, row_fingerprint) run under whatever tier is active.
  util::Rng rng(77);
  const cnf::SampleMatrix m = random_matrix(130, 70, rng);
  std::vector<std::uint64_t> reference;
  {
    TierGuard guard(Tier::kScalar);
    for (std::size_t s = 0; s < m.num_samples(); ++s) {
      reference.push_back(m.row_fingerprint(s));
      EXPECT_EQ(m.row_fingerprint(s), cnf::fingerprint(m.row(s)));
    }
  }
  for (const Tier tier : vector_tiers()) {
    TierGuard guard(tier);
    for (std::size_t s = 0; s < m.num_samples(); ++s) {
      EXPECT_EQ(m.row_fingerprint(s), reference[s]);
    }
  }
}

// --- whole-trajectory differential: scalar vs best tier --------------------

void expect_same_trajectory(const core::SynthesisResult& a,
                            const core::SynthesisResult& b,
                            const char* what) {
  ASSERT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.vector.functions, b.vector.functions) << what;
  EXPECT_EQ(a.stats.samples, b.stats.samples) << what;
  EXPECT_EQ(a.stats.counterexamples, b.stats.counterexamples) << what;
  EXPECT_EQ(a.stats.repairs, b.stats.repairs) << what;
  EXPECT_EQ(a.stats.repair_checks, b.stats.repair_checks) << what;
  EXPECT_EQ(a.stats.refit_rounds, b.stats.refit_rounds) << what;
  EXPECT_EQ(a.stats.refit_candidates, b.stats.refit_candidates) << what;
  EXPECT_EQ(a.stats.samples_appended, b.stats.samples_appended) << what;
  EXPECT_EQ(a.stats.gk_streamed_samples, b.stats.gk_streamed_samples) << what;
  EXPECT_EQ(a.stats.adaptive_refits, b.stats.adaptive_refits) << what;
}

core::SynthesisResult run_under(Tier tier, const dqbf::DqbfFormula& f,
                                const core::Manthan3Options& options,
                                aig::Aig& manager) {
  TierGuard guard(tier);
  return core::Manthan3(options).synthesize(f, manager);
}

TEST(SimdDifferential, SynthesisTrajectoryIsBitIdenticalAcrossTiers) {
  const Tier best = best_supported_tier();
  if (best == Tier::kScalar) GTEST_SKIP() << "no vector tier on this CPU";
  for (const std::uint64_t seed : {5ull, 23ull}) {
    const dqbf::DqbfFormula f = testutil::small_planted(seed);
    core::Manthan3Options options;
    options.time_limit_seconds = 30.0;
    aig::Aig scalar_manager;
    const core::SynthesisResult scalar =
        run_under(Tier::kScalar, f, options, scalar_manager);
    aig::Aig vector_manager;
    const core::SynthesisResult vectorized =
        run_under(best, f, options, vector_manager);
    expect_same_trajectory(scalar, vectorized, tier_name(best));
    if (scalar.status == core::SynthesisStatus::kRealizable) {
      testutil::expect_certified(f, vector_manager, vectorized);
    }
  }
}

TEST(SimdDifferential, ParallelLearningTrajectoryMatchesAcrossTiers) {
  const Tier best = best_supported_tier();
  if (best == Tier::kScalar) GTEST_SKIP() << "no vector tier on this CPU";
  // Counterexample-heavy instance so the streaming-append + adaptive-refit
  // paths actually run; 4 workers checks the tier flip is also safe under
  // the scheduler fan-out.
  workloads::PlantedParams params{12, 6, 4, 6, 80, 7};
  params.nested_deps = true;
  params.dep_size_max = 10;
  const dqbf::DqbfFormula f = workloads::gen_planted(params);
  core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  options.learn_workers = 4;
  aig::Aig scalar_manager;
  const core::SynthesisResult scalar =
      run_under(Tier::kScalar, f, options, scalar_manager);
  aig::Aig vector_manager;
  const core::SynthesisResult vectorized =
      run_under(best, f, options, vector_manager);
  expect_same_trajectory(scalar, vectorized, "4-worker");
}

}  // namespace
}  // namespace manthan::util::simd
