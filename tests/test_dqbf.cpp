// DQBF container and DQDIMACS parsing/writing.
#include <gtest/gtest.h>

#include "dqbf/dqbf.hpp"
#include "dqbf/dqdimacs.hpp"
#include "test_util.hpp"

namespace manthan::dqbf {
namespace {

using cnf::neg;
using cnf::pos;
using testutil::paper_example;

TEST(DqbfFormula, QuantifierClassification) {
  const DqbfFormula f = paper_example();
  EXPECT_EQ(f.num_universals(), 3u);
  EXPECT_EQ(f.num_existentials(), 3u);
  EXPECT_TRUE(f.is_universal(0));
  EXPECT_FALSE(f.is_universal(3));
  EXPECT_TRUE(f.is_existential(4));
  EXPECT_EQ(f.existential_index(5), 2u);
}

TEST(DqbfFormula, DepsSubsetAndEqual) {
  const DqbfFormula f = paper_example();
  EXPECT_TRUE(f.deps_subset(0, 1));   // {x1} ⊆ {x1,x2}
  EXPECT_FALSE(f.deps_subset(1, 0));
  EXPECT_FALSE(f.deps_subset(2, 1));  // {x2,x3} ⊄ {x1,x2}
  EXPECT_TRUE(f.deps_equal(0, 0));
  EXPECT_FALSE(f.deps_equal(0, 1));
}

TEST(DqbfFormula, IsSkolemDetection) {
  DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  EXPECT_TRUE(f.is_skolem());
  f.add_existential(3, {0});
  EXPECT_FALSE(f.is_skolem());
}

TEST(DqbfFormula, DepsDeduplicatedAndSorted) {
  DqbfFormula f;
  f.add_universal(2);
  f.add_universal(0);
  f.add_existential(3, {2, 0, 2});
  EXPECT_EQ(f.existentials()[0].deps, (std::vector<Var>{0, 2}));
}

TEST(DqbfFormula, ValidateCatchesProblems) {
  DqbfFormula ok = paper_example();
  EXPECT_TRUE(ok.validate().empty());

  DqbfFormula unquantified;
  unquantified.add_universal(0);
  unquantified.matrix().add_clause({pos(0), pos(1)});
  EXPECT_FALSE(unquantified.validate().empty());

  DqbfFormula bad_dep;
  bad_dep.add_universal(0);
  bad_dep.add_existential(1, {0});
  bad_dep.add_existential(2, {1});  // depends on an existential
  EXPECT_FALSE(bad_dep.validate().empty());
}

TEST(Dqdimacs, ParsesDLines) {
  const DqbfFormula f = parse_dqdimacs_string(testutil::tiny_dqdimacs());
  EXPECT_EQ(f.num_universals(), 2u);
  ASSERT_EQ(f.num_existentials(), 3u);
  EXPECT_EQ(f.existentials()[0].deps, (std::vector<Var>{0}));
  EXPECT_EQ(f.existentials()[1].deps, (std::vector<Var>{0, 1}));
  // e-line: depends on all universals declared so far.
  EXPECT_EQ(f.existentials()[2].deps, (std::vector<Var>{0, 1}));
  EXPECT_EQ(f.matrix().num_clauses(), 2u);
}

TEST(Dqdimacs, RoundTrips) {
  const DqbfFormula f = paper_example();
  const std::string text = to_dqdimacs_string(f);
  const DqbfFormula g = parse_dqdimacs_string(text);
  EXPECT_EQ(g.num_universals(), f.num_universals());
  ASSERT_EQ(g.num_existentials(), f.num_existentials());
  for (std::size_t i = 0; i < f.num_existentials(); ++i) {
    EXPECT_EQ(g.existentials()[i].var, f.existentials()[i].var);
    EXPECT_EQ(g.existentials()[i].deps, f.existentials()[i].deps);
  }
  ASSERT_EQ(g.matrix().num_clauses(), f.matrix().num_clauses());
  for (std::size_t c = 0; c < f.matrix().num_clauses(); ++c) {
    EXPECT_EQ(g.matrix().clause(c), f.matrix().clause(c));
  }
}

TEST(Dqdimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dqdimacs_string("a 1 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\n1 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\nd 0\n1 0\n"),
               std::runtime_error);
  // Unquantified matrix variable.
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\n1 2 0\n"),
               std::runtime_error);
}

TEST(Dqdimacs, RejectsTruncatedHeader) {
  EXPECT_THROW(parse_dqdimacs_string(""), std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p qbf 2 1\na 1 0\n"),
               std::runtime_error);
}

TEST(Dqdimacs, RejectsGarbageClauseToken) {
  // The documented contract is std::runtime_error, not whatever stoi
  // happens to raise.
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\ne 2 0\nfrog 0\n"),
               std::runtime_error);
}

TEST(Dqdimacs, RejectsOutOfRangeLiterals) {
  // Clause literal beyond the declared variable count.
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\ne 2 0\n1 5 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\ne 2 0\n-9 0\n"),
               std::runtime_error);
  // Quantifier declarations beyond the declared count (or negative).
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 7 0\ne 2 0\n2 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na -1 0\ne 2 0\n2 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\nd 9 1 0\n1 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dqdimacs_string("p cnf 2 1\na 1 0\nd 2 9 0\n1 0\n"),
               std::runtime_error);
}

TEST(Dqdimacs, CommentsIgnored) {
  const DqbfFormula f = parse_dqdimacs_string(
      "c hello\np cnf 2 1\nc mid comment\na 1 0\nd 2 1 0\n1 2 0\n");
  EXPECT_EQ(f.num_universals(), 1u);
  EXPECT_EQ(f.num_existentials(), 1u);
}

}  // namespace
}  // namespace manthan::dqbf
