// Baseline engines (HqsLite, PedantLite): correctness on True and False
// instances, characteristic failure modes, and soundness sweeps.
#include <gtest/gtest.h>

#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "dqbf/certificate.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::baselines {
namespace {

using cnf::neg;
using cnf::pos;
using cnf::Var;
using core::SynthesisResult;
using core::SynthesisStatus;
using testutil::expect_certified;
using testutil::paper_example;

// --- HqsLite ---------------------------------------------------------------

TEST(HqsLite, SolvesPaperExample) {
  const dqbf::DqbfFormula f = paper_example();
  aig::Aig manager;
  HqsLite engine;
  expect_certified(f, manager, engine.synthesize(f, manager));
}

TEST(HqsLite, SolvesSkolemInstanceWithoutExpansion) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(1), pos(0)});
  f.matrix().add_clause({neg(1), neg(0)});
  aig::Aig manager;
  HqsLite engine;
  const SynthesisResult result = engine.synthesize(f, manager);
  expect_certified(f, manager, result);
}

TEST(HqsLite, SolvesXorChainViaExpansion) {
  // Incomparable windows force genuine universal expansion.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({2, true, 1});
  aig::Aig manager;
  HqsLite engine;
  expect_certified(f, manager, engine.synthesize(f, manager));
}

TEST(HqsLite, DetectsFalseInstance) {
  const dqbf::DqbfFormula f = workloads::gen_unrealizable({2, false, 3});
  aig::Aig manager;
  HqsLite engine;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            SynthesisStatus::kUnrealizable);
}

TEST(HqsLite, ExpansionLimitTriggersGracefully) {
  // Many incomparable windows: expansion variable count exceeds the cap.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({8, false, 1});
  aig::Aig manager;
  HqsLiteOptions options;
  options.max_expansion_vars = 4;
  HqsLite engine(options);
  EXPECT_EQ(engine.synthesize(f, manager).status, SynthesisStatus::kLimit);
}

TEST(HqsLite, SucceedsOnSuccinctSat) {
  const dqbf::DqbfFormula f = workloads::gen_succinct_sat({12, 3.0, 9});
  aig::Aig manager;
  HqsLite engine;
  expect_certified(f, manager, engine.synthesize(f, manager));
}

TEST(HqsLite, NoExistentialsTautology) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.matrix().add_clause({pos(0), neg(0)});
  aig::Aig manager;
  HqsLite engine;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            SynthesisStatus::kRealizable);
}

TEST(HqsLite, NoExistentialsNonTautology) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.matrix().add_clause({neg(0)});
  aig::Aig manager;
  HqsLite engine;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            SynthesisStatus::kUnrealizable);
}

// --- PedantLite --------------------------------------------------------------

TEST(PedantLite, SolvesPaperExample) {
  const dqbf::DqbfFormula f = paper_example();
  aig::Aig manager;
  PedantLite engine;
  expect_certified(f, manager, engine.synthesize(f, manager));
}

TEST(PedantLite, InstantOnFullyDefinedInstance) {
  // y0 <-> x0 & x1 — extracted, zero counterexamples needed after the
  // first verification pass.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.matrix().add_clause({neg(2), pos(0)});
  f.matrix().add_clause({neg(2), pos(1)});
  f.matrix().add_clause({pos(2), neg(0), neg(1)});
  aig::Aig manager;
  PedantLite engine;
  const SynthesisResult result = engine.synthesize(f, manager);
  expect_certified(f, manager, result);
  EXPECT_EQ(result.stats.unique_defined, 1u);
}

TEST(PedantLite, ArbiterTableCompletesUnderdefinedInstance) {
  // (x ∨ y): y free when x=1; table fills in as counterexamples arrive.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(0), pos(1)});
  aig::Aig manager;
  PedantLite engine;
  expect_certified(f, manager, engine.synthesize(f, manager));
}

TEST(PedantLite, DetectsExtensionFalseInstance) {
  workloads::UnrealizableParams params;
  params.num_constraints = 1;
  params.extension_detectable = true;
  params.seed = 5;
  const dqbf::DqbfFormula f = workloads::gen_unrealizable(params);
  aig::Aig manager;
  PedantLite engine;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            SynthesisStatus::kUnrealizable);
}

TEST(PedantLite, XorFalseInstanceEndsBounded) {
  // The xor-shaped False instance cannot be refuted by extension checks;
  // the arbiter table oscillates and the engine gives up within bounds.
  const dqbf::DqbfFormula f = workloads::gen_unrealizable({1, false, 5});
  aig::Aig manager;
  PedantLiteOptions options;
  options.max_iterations = 200;
  PedantLite engine(options);
  const SynthesisStatus status = engine.synthesize(f, manager).status;
  EXPECT_TRUE(status == SynthesisStatus::kIncomplete ||
              status == SynthesisStatus::kLimit);
}

TEST(PedantLite, SolvesSuccinctSatByTable) {
  const dqbf::DqbfFormula f = workloads::gen_succinct_sat({10, 3.0, 13});
  aig::Aig manager;
  PedantLite engine;
  const SynthesisResult result = engine.synthesize(f, manager);
  if (result.status == SynthesisStatus::kRealizable) {
    expect_certified(f, manager, result);
  } else {
    // Bounded oscillation is an accepted outcome for the table approach.
    EXPECT_TRUE(result.status == SynthesisStatus::kIncomplete ||
                result.status == SynthesisStatus::kLimit);
  }
}

TEST(PedantLite, UnsatMatrixIsUnrealizable) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(1)});
  f.matrix().add_clause({neg(1)});
  aig::Aig manager;
  PedantLite engine;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            SynthesisStatus::kUnrealizable);
}

// --- cross-engine agreement sweep -------------------------------------------

struct AgreementCase {
  int family;
  std::uint64_t seed;
};

class BaselineAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(BaselineAgreement, EnginesNeverContradict) {
  const AgreementCase param = GetParam();
  dqbf::DqbfFormula f;
  switch (param.family) {
    case 0: f = workloads::gen_planted({6, 3, 2, 4, 16, param.seed}); break;
    case 1: f = workloads::gen_pec({5, 2, 2, 2, 8, param.seed}); break;
    case 2: f = workloads::gen_xor_chain({1, false, param.seed}); break;
    default:
      f = workloads::gen_unrealizable({1, param.seed % 2 == 0, param.seed});
      break;
  }
  aig::Aig m1;
  aig::Aig m2;
  HqsLiteOptions ho;
  ho.time_limit_seconds = 20.0;
  PedantLiteOptions po;
  po.time_limit_seconds = 20.0;
  HqsLite hqs(ho);
  PedantLite pedant(po);
  const SynthesisResult rh = hqs.synthesize(f, m1);
  const SynthesisResult rp = pedant.synthesize(f, m2);
  // A definitive True from one engine must never meet a definitive False
  // from the other.
  const bool h_true = rh.status == SynthesisStatus::kRealizable;
  const bool h_false = rh.status == SynthesisStatus::kUnrealizable;
  const bool p_true = rp.status == SynthesisStatus::kRealizable;
  const bool p_false = rp.status == SynthesisStatus::kUnrealizable;
  EXPECT_FALSE(h_true && p_false);
  EXPECT_FALSE(h_false && p_true);
  if (h_true) {
    EXPECT_EQ(dqbf::check_certificate(f, m1, rh.vector).status,
              dqbf::CertificateStatus::kValid);
  }
  if (p_true) {
    EXPECT_EQ(dqbf::check_certificate(f, m2, rp.vector).status,
              dqbf::CertificateStatus::kValid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BaselineAgreement,
    ::testing::Values(AgreementCase{0, 1}, AgreementCase{0, 2},
                      AgreementCase{1, 1}, AgreementCase{1, 2},
                      AgreementCase{2, 1}, AgreementCase{2, 2},
                      AgreementCase{3, 1}, AgreementCase{3, 2}));

}  // namespace
}  // namespace manthan::baselines
