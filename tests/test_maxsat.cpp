// Fu-Malik partial MaxSAT: optimality against brute force, hard-clause
// handling, and the FindCandi usage pattern.
#include <gtest/gtest.h>

#include <algorithm>

#include "maxsat/maxsat.hpp"
#include "util/rng.hpp"

namespace manthan::maxsat {
namespace {

using cnf::Clause;
using cnf::CnfFormula;
using cnf::neg;
using cnf::pos;
using cnf::Var;

TEST(MaxSat, AllSoftSatisfiableCostZero) {
  MaxSatSolver s;
  s.add_hard({pos(0), pos(1)});
  s.add_soft({pos(0)});
  s.add_soft({pos(1)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 0u);
  EXPECT_TRUE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

TEST(MaxSat, ConflictingSoftsCostOne) {
  MaxSatSolver s;
  s.add_soft({pos(0)});
  s.add_soft({neg(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_NE(s.soft_satisfied(0), s.soft_satisfied(1));
}

TEST(MaxSat, HardClausesAlwaysRespected) {
  MaxSatSolver s;
  s.add_hard({pos(0)});
  s.add_soft({neg(0)});
  s.add_soft({pos(1)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_TRUE(s.model().value(0));
  EXPECT_FALSE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

TEST(MaxSat, UnsatisfiableHardDetected) {
  MaxSatSolver s;
  s.add_hard({pos(0)});
  s.add_hard({neg(0)});
  s.add_soft({pos(1)});
  EXPECT_EQ(s.solve(), MaxSatStatus::kUnsatisfiableHard);
}

TEST(MaxSat, MajorityVote) {
  // Three soft units on the same variable: 2 true vs 1 false.
  MaxSatSolver s;
  s.add_soft({pos(0)});
  s.add_soft({pos(0)});
  s.add_soft({neg(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_TRUE(s.model().value(0));
}

TEST(MaxSat, ChainedConflictsCountCorrectly) {
  // Hard: x0 -> x1 -> x2; soft: x0, ¬x2 — exactly one must fall.
  MaxSatSolver s;
  s.add_hard({neg(0), pos(1)});
  s.add_hard({neg(1), pos(2)});
  s.add_soft({pos(0)});
  s.add_soft({neg(2)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
}

TEST(MaxSat, FindCandiUsagePattern) {
  // Mimic Manthan3's repair-candidate query: spec hard, outputs soft.
  // spec: y0 <-> x, y1 <-> ¬x; X fixed to x=1; candidates claim y0=0,y1=0.
  MaxSatSolver s;
  const Var x = 0;
  const Var y0 = 1;
  const Var y1 = 2;
  s.add_hard({neg(y0), pos(x)});
  s.add_hard({pos(y0), neg(x)});
  s.add_hard({neg(y1), neg(x)});
  s.add_hard({pos(y1), pos(x)});
  s.add_hard({pos(x)});     // X <-> σ[X]
  s.add_soft({neg(y0)});    // candidate output y0' = 0 (wrong)
  s.add_soft({neg(y1)});    // candidate output y1' = 0 (right)
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_FALSE(s.soft_satisfied(0));  // y0 must be repaired
  EXPECT_TRUE(s.soft_satisfied(1));   // y1 stays
}

TEST(MaxSat, EmptySoftClauseAlwaysCostsOne) {
  MaxSatSolver s;
  s.add_soft({});
  s.add_soft({pos(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_FALSE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

// ---------------------------------------------------------------------------
// Property sweep: optimal cost matches brute force on random instances.
// ---------------------------------------------------------------------------

struct MaxSatParams {
  Var num_vars;
  std::size_t num_hard;
  std::size_t num_soft;
};

class MaxSatRandom : public ::testing::TestWithParam<MaxSatParams> {};

TEST_P(MaxSatRandom, OptimumMatchesBruteForce) {
  const MaxSatParams p = GetParam();
  util::Rng rng(0xabcd + p.num_vars * 37 + p.num_soft);
  for (int round = 0; round < 25; ++round) {
    std::vector<Clause> hard;
    std::vector<Clause> soft;
    for (std::size_t i = 0; i < p.num_hard; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(cnf::Lit(
            static_cast<Var>(rng.next_below(
                static_cast<std::uint64_t>(p.num_vars))),
            rng.flip()));
      }
      hard.push_back(c);
    }
    for (std::size_t i = 0; i < p.num_soft; ++i) {
      soft.push_back({cnf::Lit(
          static_cast<Var>(rng.next_below(
              static_cast<std::uint64_t>(p.num_vars))),
          rng.flip())});
    }

    // Brute force optimal cost.
    std::size_t best = soft.size() + 1;
    bool hard_sat = false;
    for (std::uint64_t bits = 0; bits < (1ULL << p.num_vars); ++bits) {
      cnf::Assignment a(static_cast<std::size_t>(p.num_vars));
      for (Var v = 0; v < p.num_vars; ++v) a.set(v, ((bits >> v) & 1) != 0);
      const bool ok = std::all_of(hard.begin(), hard.end(), [&](const Clause& c) {
        return std::any_of(c.begin(), c.end(),
                           [&](cnf::Lit l) { return a.value(l); });
      });
      if (!ok) continue;
      hard_sat = true;
      std::size_t cost = 0;
      for (const Clause& c : soft) {
        if (!std::any_of(c.begin(), c.end(),
                         [&](cnf::Lit l) { return a.value(l); })) {
          ++cost;
        }
      }
      best = std::min(best, cost);
    }

    MaxSatSolver s;
    for (const Clause& c : hard) s.add_hard(c);
    for (const Clause& c : soft) s.add_soft(c);
    const MaxSatStatus status = s.solve();
    if (!hard_sat) {
      EXPECT_EQ(status, MaxSatStatus::kUnsatisfiableHard);
      continue;
    }
    ASSERT_EQ(status, MaxSatStatus::kOptimal);
    EXPECT_EQ(s.cost(), best);
    // Reported satisfaction flags must be consistent with the cost.
    std::size_t reported = 0;
    for (std::size_t i = 0; i < soft.size(); ++i) {
      if (!s.soft_satisfied(i)) ++reported;
    }
    EXPECT_EQ(reported, s.cost());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMaxSat, MaxSatRandom,
    ::testing::Values(MaxSatParams{4, 4, 4}, MaxSatParams{5, 8, 6},
                      MaxSatParams{6, 10, 8}, MaxSatParams{8, 14, 10}));

}  // namespace
}  // namespace manthan::maxsat
