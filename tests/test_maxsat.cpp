// Fu-Malik partial MaxSAT: optimality against brute force, hard-clause
// handling, and the FindCandi usage pattern.
#include <gtest/gtest.h>

#include <algorithm>

#include "maxsat/maxsat.hpp"
#include "util/rng.hpp"

namespace manthan::maxsat {
namespace {

using cnf::Clause;
using cnf::CnfFormula;
using cnf::neg;
using cnf::pos;
using cnf::Var;

TEST(MaxSat, AllSoftSatisfiableCostZero) {
  MaxSatSolver s;
  s.add_hard({pos(0), pos(1)});
  s.add_soft({pos(0)});
  s.add_soft({pos(1)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 0u);
  EXPECT_TRUE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

TEST(MaxSat, ConflictingSoftsCostOne) {
  MaxSatSolver s;
  s.add_soft({pos(0)});
  s.add_soft({neg(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_NE(s.soft_satisfied(0), s.soft_satisfied(1));
}

TEST(MaxSat, HardClausesAlwaysRespected) {
  MaxSatSolver s;
  s.add_hard({pos(0)});
  s.add_soft({neg(0)});
  s.add_soft({pos(1)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_TRUE(s.model().value(0));
  EXPECT_FALSE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

TEST(MaxSat, UnsatisfiableHardDetected) {
  MaxSatSolver s;
  s.add_hard({pos(0)});
  s.add_hard({neg(0)});
  s.add_soft({pos(1)});
  EXPECT_EQ(s.solve(), MaxSatStatus::kUnsatisfiableHard);
}

TEST(MaxSat, MajorityVote) {
  // Three soft units on the same variable: 2 true vs 1 false.
  MaxSatSolver s;
  s.add_soft({pos(0)});
  s.add_soft({pos(0)});
  s.add_soft({neg(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_TRUE(s.model().value(0));
}

TEST(MaxSat, ChainedConflictsCountCorrectly) {
  // Hard: x0 -> x1 -> x2; soft: x0, ¬x2 — exactly one must fall.
  MaxSatSolver s;
  s.add_hard({neg(0), pos(1)});
  s.add_hard({neg(1), pos(2)});
  s.add_soft({pos(0)});
  s.add_soft({neg(2)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
}

TEST(MaxSat, FindCandiUsagePattern) {
  // Mimic Manthan3's repair-candidate query: spec hard, outputs soft.
  // spec: y0 <-> x, y1 <-> ¬x; X fixed to x=1; candidates claim y0=0,y1=0.
  MaxSatSolver s;
  const Var x = 0;
  const Var y0 = 1;
  const Var y1 = 2;
  s.add_hard({neg(y0), pos(x)});
  s.add_hard({pos(y0), neg(x)});
  s.add_hard({neg(y1), neg(x)});
  s.add_hard({pos(y1), pos(x)});
  s.add_hard({pos(x)});     // X <-> σ[X]
  s.add_soft({neg(y0)});    // candidate output y0' = 0 (wrong)
  s.add_soft({neg(y1)});    // candidate output y1' = 0 (right)
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_FALSE(s.soft_satisfied(0));  // y0 must be repaired
  EXPECT_TRUE(s.soft_satisfied(1));   // y1 stays
}

TEST(MaxSat, EmptySoftClauseAlwaysCostsOne) {
  MaxSatSolver s;
  s.add_soft({});
  s.add_soft({pos(0)});
  ASSERT_EQ(s.solve(), MaxSatStatus::kOptimal);
  EXPECT_EQ(s.cost(), 1u);
  EXPECT_FALSE(s.soft_satisfied(0));
  EXPECT_TRUE(s.soft_satisfied(1));
}

// ---------------------------------------------------------------------------
// Property sweep: optimal cost matches brute force on random instances.
// ---------------------------------------------------------------------------

struct MaxSatParams {
  Var num_vars;
  std::size_t num_hard;
  std::size_t num_soft;
};

class MaxSatRandom : public ::testing::TestWithParam<MaxSatParams> {};

TEST_P(MaxSatRandom, OptimumMatchesBruteForce) {
  const MaxSatParams p = GetParam();
  util::Rng rng(0xabcd + p.num_vars * 37 + p.num_soft);
  for (int round = 0; round < 25; ++round) {
    std::vector<Clause> hard;
    std::vector<Clause> soft;
    for (std::size_t i = 0; i < p.num_hard; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(cnf::Lit(
            static_cast<Var>(rng.next_below(
                static_cast<std::uint64_t>(p.num_vars))),
            rng.flip()));
      }
      hard.push_back(c);
    }
    for (std::size_t i = 0; i < p.num_soft; ++i) {
      soft.push_back({cnf::Lit(
          static_cast<Var>(rng.next_below(
              static_cast<std::uint64_t>(p.num_vars))),
          rng.flip())});
    }

    // Brute force optimal cost.
    std::size_t best = soft.size() + 1;
    bool hard_sat = false;
    for (std::uint64_t bits = 0; bits < (1ULL << p.num_vars); ++bits) {
      cnf::Assignment a(static_cast<std::size_t>(p.num_vars));
      for (Var v = 0; v < p.num_vars; ++v) a.set(v, ((bits >> v) & 1) != 0);
      const bool ok = std::all_of(hard.begin(), hard.end(), [&](const Clause& c) {
        return std::any_of(c.begin(), c.end(),
                           [&](cnf::Lit l) { return a.value(l); });
      });
      if (!ok) continue;
      hard_sat = true;
      std::size_t cost = 0;
      for (const Clause& c : soft) {
        if (!std::any_of(c.begin(), c.end(),
                         [&](cnf::Lit l) { return a.value(l); })) {
          ++cost;
        }
      }
      best = std::min(best, cost);
    }

    MaxSatSolver s;
    for (const Clause& c : hard) s.add_hard(c);
    for (const Clause& c : soft) s.add_soft(c);
    const MaxSatStatus status = s.solve();
    if (!hard_sat) {
      EXPECT_EQ(status, MaxSatStatus::kUnsatisfiableHard);
      continue;
    }
    ASSERT_EQ(status, MaxSatStatus::kOptimal);
    EXPECT_EQ(s.cost(), best);
    // Reported satisfaction flags must be consistent with the cost.
    std::size_t reported = 0;
    for (std::size_t i = 0; i < soft.size(); ++i) {
      if (!s.soft_satisfied(i)) ++reported;
    }
    EXPECT_EQ(reported, s.cost());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMaxSat, MaxSatRandom,
    ::testing::Values(MaxSatParams{4, 4, 4}, MaxSatParams{5, 8, 6},
                      MaxSatParams{6, 10, 8}, MaxSatParams{8, 14, 10}));

// ---------------------------------------------------------------------------
// IncrementalMaxSat: round-scoped Fu-Malik on a shared persistent solver.
// ---------------------------------------------------------------------------

TEST(IncrementalMaxSat, CostZeroWhenSoftsFit) {
  sat::Solver solver;
  solver.add_clause({pos(0), pos(1)});
  IncrementalMaxSat inc(solver);
  ASSERT_EQ(inc.solve_round({}, {pos(0), pos(1)}), MaxSatStatus::kOptimal);
  EXPECT_EQ(inc.cost(), 0u);
  EXPECT_TRUE(inc.soft_satisfied(0));
  EXPECT_TRUE(inc.soft_satisfied(1));
}

TEST(IncrementalMaxSat, ConflictingSoftsCostOne) {
  sat::Solver solver;
  solver.ensure_vars(1);
  IncrementalMaxSat inc(solver);
  ASSERT_EQ(inc.solve_round({}, {pos(0), neg(0)}), MaxSatStatus::kOptimal);
  EXPECT_EQ(inc.cost(), 1u);
  EXPECT_NE(inc.soft_satisfied(0), inc.soft_satisfied(1));
}

TEST(IncrementalMaxSat, HardAssumptionConflictReported) {
  sat::Solver solver;
  solver.ensure_vars(2);
  IncrementalMaxSat inc(solver);
  EXPECT_EQ(inc.solve_round({pos(0), neg(0)}, {pos(1)}),
            MaxSatStatus::kUnsatisfiableHard);
}

TEST(IncrementalMaxSat, RoundsAreIndependentAndLeaveNoTrace) {
  // A high-cost round followed by a trivially satisfiable round on the
  // same solver: the retired machinery of round 1 must not constrain
  // round 2, and the underlying solver keeps answering plain queries.
  sat::Solver solver;
  solver.add_clause({pos(0), pos(1), pos(2)});
  IncrementalMaxSat inc(solver);
  ASSERT_EQ(inc.solve_round({}, {neg(0), neg(1), neg(2), pos(0)}),
            MaxSatStatus::kOptimal);
  EXPECT_GE(inc.cost(), 1u);
  ASSERT_EQ(inc.solve_round({}, {pos(0), pos(1), pos(2)}),
            MaxSatStatus::kOptimal);
  EXPECT_EQ(inc.cost(), 0u);
  EXPECT_EQ(solver.solve({neg(0), neg(1)}), sat::Result::kSat);
  EXPECT_TRUE(solver.model().value(pos(2)));
  EXPECT_EQ(inc.stats().rounds, 2u);
  EXPECT_GE(solver.stats().retired_activations, 2u);
}

/// The optimum is unique even when the witnessing assignment is not, so
/// the incremental round must agree exactly with the one-shot Fu-Malik
/// solver on every instance — across many rounds of the same shared
/// solver, which is how the repair loop drives it.
TEST(IncrementalMaxSat, MatchesOneShotFuMalikAcrossRounds) {
  util::Rng rng(29);
  const Var kVars = 7;
  // A shared hard formula (kept satisfiable: one forced model).
  CnfFormula hard(kVars);
  for (int c = 0; c < 10; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(cnf::Lit(static_cast<Var>(rng.next_below(kVars)),
                                rng.flip()));
    }
    // Keep the all-true assignment a model so the hards never conflict.
    clause.push_back(pos(static_cast<Var>(rng.next_below(kVars))));
    hard.add_clause(clause);
  }
  sat::Solver shared;
  ASSERT_TRUE(shared.add_formula(hard));
  IncrementalMaxSat inc(shared);
  for (int round = 0; round < 12; ++round) {
    std::vector<cnf::Lit> hard_units;
    for (Var v = 0; v < 2; ++v) {
      if (rng.flip()) {
        hard_units.push_back(cnf::Lit(static_cast<Var>(rng.next_below(kVars)),
                                      rng.flip()));
      }
    }
    std::vector<cnf::Lit> softs;
    const std::size_t num_softs = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < num_softs; ++i) {
      softs.push_back(cnf::Lit(static_cast<Var>(rng.next_below(kVars)),
                               rng.flip()));
    }
    const MaxSatStatus inc_status = inc.solve_round(hard_units, softs);

    MaxSatSolver oneshot;
    oneshot.add_hard_formula(hard);
    for (const cnf::Lit l : hard_units) oneshot.add_hard({l});
    for (const cnf::Lit l : softs) oneshot.add_soft({l});
    const MaxSatStatus oneshot_status = oneshot.solve();

    ASSERT_EQ(inc_status, oneshot_status) << "round " << round;
    if (inc_status == MaxSatStatus::kOptimal) {
      EXPECT_EQ(inc.cost(), oneshot.cost()) << "round " << round;
      std::size_t falsified = 0;
      for (std::size_t i = 0; i < softs.size(); ++i) {
        if (!inc.soft_satisfied(i)) ++falsified;
      }
      EXPECT_EQ(falsified, inc.cost()) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace manthan::maxsat
