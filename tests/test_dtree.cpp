// Decision-tree learner: fitting behaviour, extraction to AIG, and the
// tree == formula agreement property.
#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "dtree/decision_tree.hpp"
#include "util/rng.hpp"

namespace manthan::dtree {
namespace {

std::vector<std::vector<bool>> all_rows(std::size_t num_features) {
  std::vector<std::vector<bool>> rows;
  for (std::uint64_t bits = 0; bits < (1ULL << num_features); ++bits) {
    std::vector<bool> row;
    for (std::size_t f = 0; f < num_features; ++f) {
      row.push_back(((bits >> f) & 1) != 0);
    }
    rows.push_back(row);
  }
  return rows;
}

TEST(DecisionTree, ConstantLabels) {
  const auto rows = all_rows(2);
  const DecisionTree t0 =
      DecisionTree::fit(rows, std::vector<bool>(rows.size(), false));
  const DecisionTree t1 =
      DecisionTree::fit(rows, std::vector<bool>(rows.size(), true));
  for (const auto& row : rows) {
    EXPECT_FALSE(t0.predict(row));
    EXPECT_TRUE(t1.predict(row));
  }
  EXPECT_EQ(t0.num_nodes(), 1u);
}

TEST(DecisionTree, EmptyDataGivesFalseLeaf) {
  const DecisionTree t = DecisionTree::fit({}, {});
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_FALSE(t.predict({}));
}

TEST(DecisionTree, LearnsSingleFeature) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[1]);
  const DecisionTree t = DecisionTree::fit(rows, labels);
  for (const auto& row : rows) EXPECT_EQ(t.predict(row), row[1]);
  EXPECT_EQ(t.used_features(), (std::vector<std::int32_t>{1}));
  EXPECT_EQ(t.depth(), 1u);
}

TEST(DecisionTree, LearnsConjunction) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] && row[2]);
  const DecisionTree t = DecisionTree::fit(rows, labels);
  for (const auto& row : rows) EXPECT_EQ(t.predict(row), row[0] && row[2]);
}

TEST(DecisionTree, LearnsXorWithFullDepth) {
  // XOR has no single-feature gain, but Gini-gain==0 splits are rejected;
  // min_gain=0 lets ties through? We keep min_gain tiny so XOR needs the
  // exhaustive split to be informative at depth 2. Check perfect fit on
  // the variant x0 xor x1 with a redundant feature.
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] != row[1]);
  DtreeOptions options;
  options.min_gain = -1.0;  // accept zero-gain splits (pure XOR case)
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  for (const auto& row : rows) {
    EXPECT_EQ(t.predict(row), row[0] != row[1]);
  }
}

TEST(DecisionTree, DepthCapProducesMajorityLeaves) {
  const auto rows = all_rows(4);
  std::vector<bool> labels;
  for (const auto& row : rows) {
    labels.push_back(row[0] || (row[1] && row[2] && row[3]));
  }
  DtreeOptions options;
  options.max_depth = 1;
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_LE(t.depth(), 1u);
}

TEST(DecisionTree, MinSamplesSplitStopsGrowth) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] && row[1]);
  DtreeOptions options;
  options.min_samples_split = 100;  // never split
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_FALSE(t.predict(rows[0]));  // majority is false (6 of 8)
}

TEST(DecisionTree, ToAigMatchesPredict) {
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const std::size_t nf = 4;
    const auto rows = all_rows(nf);
    std::vector<bool> labels;
    for (std::size_t i = 0; i < rows.size(); ++i) labels.push_back(rng.flip());
    DtreeOptions options;
    options.min_gain = -1.0;  // full fit, arbitrary functions
    const DecisionTree t = DecisionTree::fit(rows, labels, options);

    aig::Aig manager;
    std::vector<aig::Ref> features;
    for (std::size_t f = 0; f < nf; ++f) {
      features.push_back(manager.input(static_cast<std::int32_t>(f)));
    }
    const aig::Ref formula = t.to_aig(manager, features);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::unordered_map<std::int32_t, bool> in;
      for (std::size_t f = 0; f < nf; ++f) {
        in[static_cast<std::int32_t>(f)] = rows[i][f];
      }
      EXPECT_EQ(manager.evaluate(formula, in), t.predict(rows[i]))
          << "round " << round << " row " << i;
    }
  }
}

TEST(DecisionTree, PerfectFitOnNoiseFreeData) {
  // Invariant from DESIGN.md: with unlimited depth and zero-gain splits
  // allowed, the tree perfectly fits any noise-free boolean function.
  util::Rng rng(9);
  const auto rows = all_rows(5);
  for (int round = 0; round < 10; ++round) {
    std::vector<bool> labels;
    for (std::size_t i = 0; i < rows.size(); ++i) labels.push_back(rng.flip());
    DtreeOptions options;
    options.min_gain = -1.0;
    const DecisionTree t = DecisionTree::fit(rows, labels, options);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(t.predict(rows[i]), labels[i]);
    }
  }
}

TEST(DecisionTree, LeafAndDepthAccounting) {
  const auto rows = all_rows(2);
  std::vector<bool> labels{false, true, true, false};  // xor
  DtreeOptions options;
  options.min_gain = -1.0;
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_EQ(t.num_leaves(), t.num_nodes() - (t.num_nodes() - 1) / 2);
  EXPECT_GE(t.depth(), 2u);
}

}  // namespace
}  // namespace manthan::dtree
