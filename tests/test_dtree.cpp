// Decision-tree learner: fitting behaviour, extraction to AIG, and the
// tree == formula agreement property.
#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "dtree/decision_tree.hpp"
#include "util/rng.hpp"

namespace manthan::dtree {
namespace {

std::vector<std::vector<bool>> all_rows(std::size_t num_features) {
  std::vector<std::vector<bool>> rows;
  for (std::uint64_t bits = 0; bits < (1ULL << num_features); ++bits) {
    std::vector<bool> row;
    for (std::size_t f = 0; f < num_features; ++f) {
      row.push_back(((bits >> f) & 1) != 0);
    }
    rows.push_back(row);
  }
  return rows;
}

TEST(DecisionTree, ConstantLabels) {
  const auto rows = all_rows(2);
  const DecisionTree t0 =
      DecisionTree::fit(rows, std::vector<bool>(rows.size(), false));
  const DecisionTree t1 =
      DecisionTree::fit(rows, std::vector<bool>(rows.size(), true));
  for (const auto& row : rows) {
    EXPECT_FALSE(t0.predict(row));
    EXPECT_TRUE(t1.predict(row));
  }
  EXPECT_EQ(t0.num_nodes(), 1u);
}

TEST(DecisionTree, EmptyDataGivesFalseLeaf) {
  const DecisionTree t = DecisionTree::fit({}, {});
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_FALSE(t.predict({}));
}

TEST(DecisionTree, LearnsSingleFeature) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[1]);
  const DecisionTree t = DecisionTree::fit(rows, labels);
  for (const auto& row : rows) EXPECT_EQ(t.predict(row), row[1]);
  EXPECT_EQ(t.used_features(), (std::vector<std::int32_t>{1}));
  EXPECT_EQ(t.depth(), 1u);
}

TEST(DecisionTree, LearnsConjunction) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] && row[2]);
  const DecisionTree t = DecisionTree::fit(rows, labels);
  for (const auto& row : rows) EXPECT_EQ(t.predict(row), row[0] && row[2]);
}

TEST(DecisionTree, LearnsXorWithFullDepth) {
  // XOR has no single-feature gain, but Gini-gain==0 splits are rejected;
  // min_gain=0 lets ties through? We keep min_gain tiny so XOR needs the
  // exhaustive split to be informative at depth 2. Check perfect fit on
  // the variant x0 xor x1 with a redundant feature.
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] != row[1]);
  DtreeOptions options;
  options.min_gain = -1.0;  // accept zero-gain splits (pure XOR case)
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  for (const auto& row : rows) {
    EXPECT_EQ(t.predict(row), row[0] != row[1]);
  }
}

TEST(DecisionTree, DepthCapProducesMajorityLeaves) {
  const auto rows = all_rows(4);
  std::vector<bool> labels;
  for (const auto& row : rows) {
    labels.push_back(row[0] || (row[1] && row[2] && row[3]));
  }
  DtreeOptions options;
  options.max_depth = 1;
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_LE(t.depth(), 1u);
}

TEST(DecisionTree, MinSamplesSplitStopsGrowth) {
  const auto rows = all_rows(3);
  std::vector<bool> labels;
  for (const auto& row : rows) labels.push_back(row[0] && row[1]);
  DtreeOptions options;
  options.min_samples_split = 100;  // never split
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_FALSE(t.predict(rows[0]));  // majority is false (6 of 8)
}

TEST(DecisionTree, ToAigMatchesPredict) {
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const std::size_t nf = 4;
    const auto rows = all_rows(nf);
    std::vector<bool> labels;
    for (std::size_t i = 0; i < rows.size(); ++i) labels.push_back(rng.flip());
    DtreeOptions options;
    options.min_gain = -1.0;  // full fit, arbitrary functions
    const DecisionTree t = DecisionTree::fit(rows, labels, options);

    aig::Aig manager;
    std::vector<aig::Ref> features;
    for (std::size_t f = 0; f < nf; ++f) {
      features.push_back(manager.input(static_cast<std::int32_t>(f)));
    }
    const aig::Ref formula = t.to_aig(manager, features);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::unordered_map<std::int32_t, bool> in;
      for (std::size_t f = 0; f < nf; ++f) {
        in[static_cast<std::int32_t>(f)] = rows[i][f];
      }
      EXPECT_EQ(manager.evaluate(formula, in), t.predict(rows[i]))
          << "round " << round << " row " << i;
    }
  }
}

TEST(DecisionTree, PerfectFitOnNoiseFreeData) {
  // Invariant from DESIGN.md: with unlimited depth and zero-gain splits
  // allowed, the tree perfectly fits any noise-free boolean function.
  util::Rng rng(9);
  const auto rows = all_rows(5);
  for (int round = 0; round < 10; ++round) {
    std::vector<bool> labels;
    for (std::size_t i = 0; i < rows.size(); ++i) labels.push_back(rng.flip());
    DtreeOptions options;
    options.min_gain = -1.0;
    const DecisionTree t = DecisionTree::fit(rows, labels, options);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(t.predict(rows[i]), labels[i]);
    }
  }
}

// --- packed vs row-wise differential ---------------------------------------
// The popcount path over a SampleMatrix must emit *bit-identical* node
// arrays to the row-wise oracle on the unpacked data: same counts, same
// Gini arithmetic, same seed-rotated tie-breaks, same recursion order.

struct PackedCase {
  cnf::SampleMatrix matrix{0};
  std::vector<cnf::Var> feature_vars;
  cnf::Var label_var = 0;
  std::vector<std::vector<bool>> rows;
  std::vector<bool> labels;
};

/// Random matrix over `vars` variables; features are a random subset of
/// the non-label variables (order shuffled), labels a noisy function of
/// three of them.
PackedCase make_case(std::size_t samples, std::size_t vars,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  PackedCase c;
  c.matrix = cnf::SampleMatrix(static_cast<cnf::Var>(vars));
  c.label_var = static_cast<cnf::Var>(rng.next_below(vars));
  for (std::size_t v = 0; v < vars; ++v) {
    if (static_cast<cnf::Var>(v) != c.label_var && rng.flip(0.8)) {
      c.feature_vars.push_back(static_cast<cnf::Var>(v));
    }
  }
  for (std::size_t i = c.feature_vars.size(); i > 1; --i) {
    std::swap(c.feature_vars[i - 1], c.feature_vars[rng.next_below(i)]);
  }
  for (std::size_t s = 0; s < samples; ++s) {
    cnf::Assignment a(vars);
    for (std::size_t v = 0; v < vars; ++v) {
      a.set(static_cast<cnf::Var>(v), rng.flip());
    }
    // Correlate the label with the first features so trees have depth.
    if (c.feature_vars.size() >= 3 && !rng.flip(0.1)) {
      const bool f0 = a.value(c.feature_vars[0]);
      const bool f1 = a.value(c.feature_vars[1]);
      const bool f2 = a.value(c.feature_vars[2]);
      a.set(c.label_var, (f0 && f1) || f2);
    }
    c.matrix.append(a);
    std::vector<bool> row;
    for (const cnf::Var v : c.feature_vars) row.push_back(a.value(v));
    c.rows.push_back(std::move(row));
    c.labels.push_back(a.value(c.label_var));
  }
  return c;
}

TEST(DecisionTreePacked, BitIdenticalToRowwiseAcrossMatricesAndSeeds) {
  for (const std::uint64_t data_seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const PackedCase c = make_case(50 + 37 * data_seed, 12, data_seed);
    for (const std::uint64_t stream :
         {0ull, 42ull, 0x9e3779b97f4a7c15ull}) {
      DtreeOptions options;
      options.seed = stream;
      const DecisionTree packed =
          DecisionTree::fit(c.matrix, c.feature_vars, c.label_var, options);
      const DecisionTree rowwise =
          DecisionTree::fit(c.rows, c.labels, options);
      ASSERT_EQ(packed.nodes().size(), rowwise.nodes().size())
          << "data " << data_seed << " stream " << stream;
      EXPECT_EQ(packed.nodes(), rowwise.nodes())
          << "data " << data_seed << " stream " << stream;
    }
  }
}

TEST(DecisionTreePacked, BitIdenticalUnderFitOptions) {
  const PackedCase c = make_case(300, 16, 99);
  for (const double min_gain : {-1.0, 1e-9, 0.01}) {
    for (const std::size_t max_depth : {0ul, 2ul, 5ul}) {
      DtreeOptions options;
      options.min_gain = min_gain;
      options.max_depth = max_depth;
      options.min_samples_split = 4;
      options.seed = 7;
      const DecisionTree packed =
          DecisionTree::fit(c.matrix, c.feature_vars, c.label_var, options);
      const DecisionTree rowwise =
          DecisionTree::fit(c.rows, c.labels, options);
      EXPECT_EQ(packed.nodes(), rowwise.nodes())
          << "min_gain " << min_gain << " max_depth " << max_depth;
    }
  }
}

TEST(DecisionTreePacked, WordBoundarySizes) {
  // Exactly 64/128 samples (full tail mask) and 1/63/65 (partial masks).
  for (const std::size_t samples : {1ul, 63ul, 64ul, 65ul, 128ul}) {
    const PackedCase c = make_case(samples, 8, samples);
    DtreeOptions options;
    options.seed = 3;
    const DecisionTree packed =
        DecisionTree::fit(c.matrix, c.feature_vars, c.label_var, options);
    const DecisionTree rowwise = DecisionTree::fit(c.rows, c.labels, options);
    EXPECT_EQ(packed.nodes(), rowwise.nodes()) << samples << " samples";
  }
}

TEST(DecisionTreePacked, EmptyMatrixGivesFalseLeaf) {
  const cnf::SampleMatrix empty(4);
  const DecisionTree t = DecisionTree::fit(empty, {0, 1, 2}, 3);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_FALSE(t.predict({false, false, false}));
}

TEST(DecisionTreePacked, DuplicateFeatureVariablesAllowed) {
  // The same variable may appear as several features (never profitable
  // after the first split, but must not diverge from the oracle).
  PackedCase c = make_case(80, 6, 21);
  c.feature_vars.push_back(c.feature_vars[0]);
  for (auto& row : c.rows) row.push_back(row[0]);
  const DecisionTree packed =
      DecisionTree::fit(c.matrix, c.feature_vars, c.label_var, {});
  const DecisionTree rowwise = DecisionTree::fit(c.rows, c.labels, {});
  EXPECT_EQ(packed.nodes(), rowwise.nodes());
}

TEST(DecisionTree, LeafAndDepthAccounting) {
  const auto rows = all_rows(2);
  std::vector<bool> labels{false, true, true, false};  // xor
  DtreeOptions options;
  options.min_gain = -1.0;
  const DecisionTree t = DecisionTree::fit(rows, labels, options);
  EXPECT_EQ(t.num_leaves(), t.num_nodes() - (t.num_nodes() - 1) / 2);
  EXPECT_GE(t.depth(), 2u);
}

}  // namespace
}  // namespace manthan::dtree
