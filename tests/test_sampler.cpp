// Constrained sampler: all samples are models, diversity, adaptive bias,
// and UNSAT handling.
#include <gtest/gtest.h>

#include <set>

#include "cnf/cnf.hpp"
#include "sampler/sampler.hpp"

namespace manthan::sampler {
namespace {

using cnf::neg;
using cnf::pos;

TEST(Sampler, AllSamplesSatisfyFormula) {
  CnfFormula f(6);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(2), pos(3)});
  f.add_clause({pos(4), neg(5), pos(0)});
  SamplerOptions options;
  options.num_samples = 100;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {});
  ASSERT_FALSE(samples.empty());
  for (const Assignment& a : samples) EXPECT_TRUE(f.satisfied_by(a));
}

TEST(Sampler, UnsatFormulaYieldsNoSamples) {
  CnfFormula f(1);
  f.add_clause({pos(0)});
  f.add_clause({neg(0)});
  Sampler sampler;
  EXPECT_TRUE(sampler.sample(f, {}).empty());
}

TEST(Sampler, ProducesDiverseModels) {
  // 8 unconstrained variables: expect to see many distinct assignments.
  CnfFormula f(8);
  f.add_clause({pos(0), neg(0)});
  SamplerOptions options;
  options.num_samples = 64;
  options.adaptive = false;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {});
  std::set<std::vector<bool>> distinct;
  for (const Assignment& a : samples) distinct.insert(a.bits());
  EXPECT_GT(distinct.size(), 20u);
}

TEST(Sampler, CoversBothPolaritiesOfFreeVariable) {
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  SamplerOptions options;
  options.num_samples = 60;
  options.adaptive = false;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {});
  int true_count = 0;
  for (const Assignment& a : samples) {
    if (a.value(cnf::Var{3})) ++true_count;
  }
  EXPECT_GT(true_count, 0);
  EXPECT_LT(true_count, static_cast<int>(samples.size()));
}

TEST(Sampler, AdaptiveBiasFollowsSkew) {
  // y (var 8) equals x0 | x1; six further free variables keep the model
  // count high. Models mostly have y = 1, and the adaptive stage should
  // not *reduce* coverage of the skewed value.
  CnfFormula f(9);
  f.add_clause({neg(8), pos(0), pos(1)});
  f.add_clause({pos(8), neg(0)});
  f.add_clause({pos(8), neg(1)});
  SamplerOptions options;
  options.num_samples = 200;
  options.adaptive = true;
  options.probe_samples = 40;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {8});
  ASSERT_GT(samples.size(), 50u);
  std::size_t y_true = 0;
  for (const Assignment& a : samples) {
    EXPECT_TRUE(f.satisfied_by(a));
    if (a.value(cnf::Var{8})) ++y_true;
  }
  // 3 of 4 (x0,x1) combinations force y=1.
  EXPECT_GT(y_true * 2, samples.size());
}

TEST(Sampler, SamplesArePairwiseDistinct) {
  // Only 4 models exist ((x0,x1) free, y = x0 | x1): requesting far more
  // must return each model at most once instead of repeats.
  CnfFormula f(3);
  f.add_clause({neg(2), pos(0), pos(1)});
  f.add_clause({pos(2), neg(0)});
  f.add_clause({pos(2), neg(1)});
  SamplerOptions options;
  options.num_samples = 64;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {2});
  ASSERT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), 4u);
  std::set<std::vector<bool>> distinct;
  for (const Assignment& a : samples) {
    EXPECT_TRUE(f.satisfied_by(a));
    EXPECT_TRUE(distinct.insert(a.bits()).second)
        << "duplicate model returned";
  }
}

TEST(Sampler, DistinctSamplesAcrossProbeAndMainRounds) {
  // Adaptive mode draws in two rounds (probe + biased main) with
  // different solvers; dedup must span both.
  CnfFormula f(10);
  f.add_clause({pos(0), pos(1)});
  SamplerOptions options;
  options.num_samples = 120;
  options.adaptive = true;
  options.probe_samples = 16;
  Sampler sampler(options);
  const std::vector<Assignment> samples = sampler.sample(f, {0, 1});
  ASSERT_GT(samples.size(), 16u);  // main round actually topped up
  std::set<std::vector<bool>> distinct;
  for (const Assignment& a : samples) distinct.insert(a.bits());
  EXPECT_EQ(distinct.size(), samples.size());
}

TEST(Sampler, RespectsSampleBudget) {
  CnfFormula f(5);
  f.add_clause({pos(0), pos(1)});
  SamplerOptions options;
  options.num_samples = 17;
  Sampler sampler(options);
  EXPECT_LE(sampler.sample(f, {}).size(), 17u);
}

TEST(Sampler, DeterministicForSeed) {
  CnfFormula f(6);
  f.add_clause({pos(0), pos(1), pos(2)});
  SamplerOptions options;
  options.num_samples = 30;
  options.seed = 99;
  Sampler a(options);
  Sampler b(options);
  const auto sa = a.sample(f, {0, 1});
  const auto sb = b.sample(f, {0, 1});
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].bits(), sb[i].bits());
  }
}

// --- enumerating session vs the legacy one-solve-per-model oracle ----------

TEST(SamplerEnumerate, ModelsValidAndPairwiseDistinctInBothModes) {
  CnfFormula f(12);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(2), pos(3)});
  f.add_clause({pos(4), neg(5), pos(0)});
  for (const bool enumerate : {true, false}) {
    SamplerOptions options;
    options.num_samples = 300;
    options.enumerate = enumerate;
    Sampler sampler(options);
    const std::vector<Assignment> samples = sampler.sample(f, {0, 2});
    ASSERT_GT(samples.size(), 200u) << "enumerate " << enumerate;
    std::set<std::vector<bool>> distinct;
    for (const Assignment& a : samples) {
      EXPECT_TRUE(f.satisfied_by(a));
      EXPECT_TRUE(distinct.insert(a.bits()).second) << "duplicate model";
    }
  }
}

TEST(SamplerEnumerate, MatchesLegacyDistributionSanity) {
  // 8 free variables, unbiased polarities: both front ends must cover
  // both polarities of every variable at a healthy rate; the enumerating
  // session must not collapse onto a corner of the model space.
  CnfFormula f(8);
  f.add_clause({pos(0), neg(0)});
  for (const bool enumerate : {true, false}) {
    SamplerOptions options;
    options.num_samples = 200;
    options.adaptive = false;
    options.enumerate = enumerate;
    Sampler sampler(options);
    const std::vector<Assignment> samples = sampler.sample(f, {});
    ASSERT_GT(samples.size(), 100u);
    for (cnf::Var v = 0; v < 8; ++v) {
      std::size_t trues = 0;
      for (const Assignment& a : samples) {
        if (a.value(v)) ++trues;
      }
      const double fraction =
          static_cast<double>(trues) / static_cast<double>(samples.size());
      EXPECT_GT(fraction, 0.25) << "enumerate " << enumerate << " var " << v;
      EXPECT_LT(fraction, 0.75) << "enumerate " << enumerate << " var " << v;
    }
  }
}

TEST(SamplerEnumerate, ExhaustsSmallModelSpacesLikeLegacy) {
  // Only 4 models exist; both modes must find all of them (and stop).
  CnfFormula f(3);
  f.add_clause({neg(2), pos(0), pos(1)});
  f.add_clause({pos(2), neg(0)});
  f.add_clause({pos(2), neg(1)});
  for (const bool enumerate : {true, false}) {
    SamplerOptions options;
    options.num_samples = 64;
    options.enumerate = enumerate;
    Sampler sampler(options);
    const std::vector<Assignment> samples = sampler.sample(f, {2});
    EXPECT_EQ(samples.size(), 4u) << "enumerate " << enumerate;
  }
}

TEST(SamplerEnumerate, PackedMatrixAgreesWithRowUnpackedView) {
  CnfFormula f(9);
  f.add_clause({pos(0), pos(4)});
  f.add_clause({neg(1), pos(5)});
  SamplerOptions options;
  options.num_samples = 120;
  Sampler packed_sampler(options);
  const cnf::SampleMatrix matrix = packed_sampler.sample_packed(f, {0, 1});
  Sampler row_sampler(options);
  const std::vector<Assignment> rows = row_sampler.sample(f, {0, 1});
  ASSERT_EQ(matrix.num_samples(), rows.size());
  for (std::size_t s = 0; s < rows.size(); ++s) {
    EXPECT_EQ(matrix.row(s), rows[s]) << "sample " << s;
  }
}

TEST(SamplerEnumerate, DeterministicForSeed) {
  CnfFormula f(10);
  f.add_clause({pos(0), pos(1), pos(2)});
  SamplerOptions options;
  options.num_samples = 50;
  options.seed = 123;
  Sampler a(options);
  Sampler b(options);
  const auto sa = a.sample(f, {0, 1});
  const auto sb = b.sample(f, {0, 1});
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].bits(), sb[i].bits());
  }
}

TEST(SamplerEnumerate, UnsatYieldsEmptyMatrix) {
  CnfFormula f(2);
  f.add_clause({pos(0)});
  f.add_clause({neg(0)});
  Sampler sampler;
  EXPECT_TRUE(sampler.sample_packed(f, {}).empty());
}

TEST(Sampler, ExpiredDeadlineShortCircuitsBeforeMainRound) {
  // The fix under test: a deadline that expires during the probe round
  // must return the probe data directly instead of spinning up the
  // main-round solver (whose draw would immediately abandon).
  CnfFormula f(10);
  f.add_clause({pos(0), pos(1)});
  for (const bool enumerate : {true, false}) {
    SamplerOptions options;
    options.num_samples = 100000000;
    options.probe_samples = 100000000;  // probe absorbs the whole budget
    options.adaptive = true;
    options.enumerate = enumerate;
    Sampler sampler(options);
    const util::Deadline deadline(0.05);
    const auto samples = sampler.sample(f, {0}, &deadline);
    EXPECT_TRUE(deadline.expired());
    EXPECT_FALSE(samples.empty());
    EXPECT_FALSE(sampler.stats().main_round)
        << "main-round solver spun up after deadline expiry (enumerate "
        << enumerate << ")";
    EXPECT_EQ(sampler.stats().main_samples, 0u);
  }
}

TEST(Sampler, DeadlineReturnsPartialData) {
  CnfFormula f(10);
  f.add_clause({pos(0), pos(1)});
  SamplerOptions options;
  // A fast solver draws ~100k trivial models in under 50ms, so the request
  // must exceed any plausible machine speed for the deadline to bind.
  options.num_samples = 100000000;
  Sampler sampler(options);
  const util::Deadline deadline(0.05);
  const auto samples = sampler.sample(f, {}, &deadline);
  EXPECT_TRUE(deadline.expired());
  EXPECT_LT(samples.size(), options.num_samples);
  EXPECT_FALSE(samples.empty());
}

}  // namespace
}  // namespace manthan::sampler
