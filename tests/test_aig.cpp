// AIG package: hashing, folding, composition, support, CNF encoding, and
// simulation agreement properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig.hpp"
#include "aig/aig_cnf.hpp"
#include "aig/aig_sim.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace manthan::aig {
namespace {

TEST(Aig, ConstantsAndNegation) {
  EXPECT_EQ(ref_not(kFalseRef), kTrueRef);
  EXPECT_EQ(ref_not(kTrueRef), kFalseRef);
  EXPECT_EQ(Aig::constant(true), kTrueRef);
  EXPECT_EQ(Aig::constant(false), kFalseRef);
}

TEST(Aig, ConstantFolding) {
  Aig m;
  const Ref a = m.input(0);
  EXPECT_EQ(m.and_gate(a, kFalseRef), kFalseRef);
  EXPECT_EQ(m.and_gate(a, kTrueRef), a);
  EXPECT_EQ(m.and_gate(a, a), a);
  EXPECT_EQ(m.and_gate(a, ref_not(a)), kFalseRef);
  EXPECT_EQ(m.or_gate(a, kTrueRef), kTrueRef);
  EXPECT_EQ(m.or_gate(a, kFalseRef), a);
}

TEST(Aig, StructuralHashing) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  EXPECT_EQ(m.and_gate(a, b), m.and_gate(b, a));
  const std::size_t nodes = m.num_nodes();
  (void)m.and_gate(a, b);
  EXPECT_EQ(m.num_nodes(), nodes);
}

TEST(Aig, EvaluateBasicGates) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref conj = m.and_gate(a, b);
  const Ref x = m.xor_gate(a, b);
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      std::unordered_map<std::int32_t, bool> in{{0, va}, {1, vb}};
      EXPECT_EQ(m.evaluate(conj, in), va && vb);
      EXPECT_EQ(m.evaluate(x, in), va != vb);
      EXPECT_EQ(m.evaluate(m.or_gate(a, b), in), va || vb);
      EXPECT_EQ(m.evaluate(m.equiv_gate(a, b), in), va == vb);
      EXPECT_EQ(m.evaluate(m.implies_gate(a, b), in), !va || vb);
    }
  }
}

TEST(Aig, IteSemantics) {
  Aig m;
  const Ref c = m.input(0);
  const Ref t = m.input(1);
  const Ref e = m.input(2);
  const Ref ite = m.ite_gate(c, t, e);
  for (int bits = 0; bits < 8; ++bits) {
    std::unordered_map<std::int32_t, bool> in{
        {0, (bits & 1) != 0}, {1, (bits & 2) != 0}, {2, (bits & 4) != 0}};
    EXPECT_EQ(m.evaluate(ite, in), in[0] ? in[1] : in[2]);
  }
}

TEST(Aig, AndAllOrAll) {
  Aig m;
  std::vector<Ref> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(m.input(i));
  const Ref conj = m.and_all(inputs);
  const Ref disj = m.or_all(inputs);
  EXPECT_EQ(m.and_all({}), kTrueRef);
  EXPECT_EQ(m.or_all({}), kFalseRef);
  std::unordered_map<std::int32_t, bool> all_true;
  std::unordered_map<std::int32_t, bool> one_false;
  for (int i = 0; i < 5; ++i) {
    all_true[i] = true;
    one_false[i] = i != 2;
  }
  EXPECT_TRUE(m.evaluate(conj, all_true));
  EXPECT_FALSE(m.evaluate(conj, one_false));
  EXPECT_TRUE(m.evaluate(disj, one_false));
}

TEST(Aig, SupportReflectsCone) {
  Aig m;
  const Ref a = m.input(3);
  const Ref b = m.input(7);
  const Ref c = m.input(5);
  const Ref f = m.or_gate(m.and_gate(a, b), c);
  EXPECT_EQ(m.support(f), (std::vector<std::int32_t>{3, 5, 7}));
  EXPECT_TRUE(m.support(kTrueRef).empty());
  EXPECT_EQ(m.support(a), (std::vector<std::int32_t>{3}));
}

TEST(Aig, ComposeSubstitutesInputs) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref c = m.input(2);
  const Ref f = m.xor_gate(a, b);
  // b := a & c  =>  f' = a xor (a & c)
  const Ref composed = m.compose(f, {{1, m.and_gate(a, c)}});
  for (int bits = 0; bits < 8; ++bits) {
    std::unordered_map<std::int32_t, bool> in{
        {0, (bits & 1) != 0}, {1, (bits & 2) != 0}, {2, (bits & 4) != 0}};
    EXPECT_EQ(m.evaluate(composed, in), in[0] != (in[0] && in[2]));
  }
  // Substituted variable no longer in support.
  const auto support = m.support(composed);
  EXPECT_EQ(std::count(support.begin(), support.end(), 1), 0);
}

TEST(Aig, ComposeIsSimultaneous) {
  // swap inputs: {0 -> x1, 1 -> x0} must not cascade.
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref f = m.and_gate(a, ref_not(b));
  const Ref swapped = m.compose(f, {{0, b}, {1, a}});
  std::unordered_map<std::int32_t, bool> in{{0, false}, {1, true}};
  EXPECT_EQ(m.evaluate(swapped, in), true && !false);
}

TEST(Aig, CofactorFixesInput) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref f = m.xor_gate(a, b);
  const Ref f1 = m.cofactor(f, 0, true);
  std::unordered_map<std::int32_t, bool> in{{1, true}};
  EXPECT_FALSE(m.evaluate(f1, in));
  in[1] = false;
  EXPECT_TRUE(m.evaluate(f1, in));
}

TEST(AigSim, Simulate64MatchesEvaluate) {
  util::Rng rng(42);
  Aig m;
  std::vector<Ref> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(m.input(i));
  for (int g = 0; g < 30; ++g) {
    const Ref a = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    const Ref b = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    pool.push_back(m.and_gate(a, b));
  }
  const Ref f = pool.back();
  std::unordered_map<std::int32_t, std::uint64_t> patterns;
  for (int i = 0; i < 6; ++i) patterns[i] = rng.next();
  const std::uint64_t word = simulate64(m, f, patterns);
  for (int bit = 0; bit < 64; ++bit) {
    std::unordered_map<std::int32_t, bool> in;
    for (int i = 0; i < 6; ++i) in[i] = ((patterns[i] >> bit) & 1) != 0;
    EXPECT_EQ(((word >> bit) & 1) != 0, m.evaluate(f, in)) << "bit " << bit;
  }
}

TEST(AigSim, TautologyDetection) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  EXPECT_TRUE(is_tautology(m, kTrueRef));
  EXPECT_FALSE(is_tautology(m, kFalseRef));
  EXPECT_TRUE(is_tautology(m, m.or_gate(a, ref_not(a))));
  EXPECT_FALSE(is_tautology(m, m.or_gate(a, b)));
  // (a -> b) or (b -> a) is a tautology.
  EXPECT_TRUE(is_tautology(
      m, m.or_gate(m.implies_gate(a, b), m.implies_gate(b, a))));
}

TEST(AigSim, TautologyWithManyInputs) {
  // Force the multi-word path (> 6 support variables).
  Aig m;
  std::vector<Ref> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(m.input(i));
  const Ref conj = m.and_all(ins);
  EXPECT_TRUE(is_tautology(m, m.or_gate(conj, ref_not(conj))));
  EXPECT_FALSE(is_tautology(m, m.or_all(ins)));
}

TEST(AigSim, SemanticEquality) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  // De Morgan.
  const Ref lhs = ref_not(m.and_gate(a, b));
  const Ref rhs = m.or_gate(ref_not(a), ref_not(b));
  EXPECT_TRUE(semantically_equal(m, lhs, rhs));
  EXPECT_FALSE(semantically_equal(m, a, b));
}

TEST(AigSim, TruthTable) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const std::vector<bool> tt = truth_table(m, m.and_gate(a, b), {0, 1});
  EXPECT_EQ(tt, (std::vector<bool>{false, false, false, true}));
}

TEST(AigCnf, EncodingEquisatisfiable) {
  // SAT check of an encoded cone agrees with simulation.
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    Aig m;
    std::vector<Ref> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(m.input(i));
    for (int g = 0; g < 15; ++g) {
      const Ref a = pool[rng.next_below(pool.size())] ^
                    static_cast<Ref>(rng.flip());
      const Ref b = pool[rng.next_below(pool.size())] ^
                    static_cast<Ref>(rng.flip());
      pool.push_back(m.and_gate(a, b));
    }
    const Ref f = pool.back() ^ static_cast<Ref>(rng.flip());

    cnf::CnfFormula cnf_formula(5);
    const cnf::Lit root = encode_cone(m, f, cnf_formula);
    cnf_formula.add_unit(root);
    sat::Solver solver;
    const bool ok = solver.add_formula(cnf_formula);
    const sat::Result r = ok ? solver.solve() : sat::Result::kUnsat;

    // f satisfiable (not constant-false over its support)?
    const bool satisfiable = !is_tautology(m, ref_not(f));
    EXPECT_EQ(r == sat::Result::kSat, satisfiable);
    if (r == sat::Result::kSat) {
      std::unordered_map<std::int32_t, bool> in;
      for (int i = 0; i < 5; ++i) in[i] = solver.model().value(i);
      EXPECT_TRUE(m.evaluate(f, in));
    }
  }
}

TEST(AigCnf, ConstantCone) {
  Aig m;
  cnf::CnfFormula f(0);
  const cnf::Lit t = encode_cone(m, kTrueRef, f);
  f.add_unit(t);
  sat::Solver solver;
  solver.add_formula(f);
  EXPECT_EQ(solver.solve(), sat::Result::kSat);

  cnf::CnfFormula g(0);
  const cnf::Lit fl = encode_cone(m, kFalseRef, g);
  g.add_unit(fl);
  sat::Solver solver2;
  const bool ok = solver2.add_formula(g);
  EXPECT_TRUE(!ok || solver2.solve() == sat::Result::kUnsat);
}

}  // namespace
}  // namespace manthan::aig
