// Differential testing of the CDCL solver against brute-force
// enumeration on hundreds of random small CNFs: SAT/UNSAT agreement,
// model validity, core soundness and minimality-side conditions under
// assumptions, and incremental clause addition. This is the safety net
// behind the flat clause-arena storage rewrite; run it under
// MANTHAN_SANITIZE=ON to sweep the arena/GC paths for memory errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "cnf/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace manthan::sat {
namespace {

using cnf::Assignment;
using cnf::Clause;
using cnf::CnfFormula;
using cnf::Lit;
using cnf::Var;

/// Brute-force satisfiability (up to ~20 variables); returns a model.
std::optional<Assignment> brute_force_model(const CnfFormula& f) {
  const Var n = f.num_vars();
  for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    Assignment a(static_cast<std::size_t>(n));
    for (Var v = 0; v < n; ++v) a.set(v, ((bits >> v) & 1) != 0);
    if (f.satisfied_by(a)) return a;
  }
  return std::nullopt;
}

CnfFormula random_cnf(Var num_vars, std::size_t num_clauses,
                      std::size_t max_width, util::Rng& rng) {
  CnfFormula f(num_vars);
  for (std::size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    const std::size_t width = 1 + rng.next_below(max_width);
    for (std::size_t k = 0; k < width; ++k) {
      const Var v = static_cast<Var>(
          rng.next_below(static_cast<std::uint64_t>(num_vars)));
      clause.push_back(Lit(v, rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

/// ~200 random CNFs of mixed width and density, solved plain.
TEST(SolverDifferential, AgreesWithBruteForceOnRandomCnfs) {
  util::Rng rng(0x5a7e11fe);
  int checked = 0;
  for (int round = 0; round < 200; ++round) {
    const Var num_vars = static_cast<Var>(3 + rng.next_below(10));  // 3..12
    const std::size_t num_clauses =
        2 + rng.next_below(static_cast<std::uint64_t>(6 * num_vars));
    const CnfFormula f = random_cnf(num_vars, num_clauses, 4, rng);
    const std::optional<Assignment> reference = brute_force_model(f);
    Solver s;
    ++checked;
    if (!s.add_formula(f)) {
      // Root-level conflict during loading is itself an UNSAT verdict.
      EXPECT_FALSE(reference.has_value()) << f.to_string();
      continue;
    }
    const Result r = s.solve();
    ASSERT_NE(r, Result::kUnknown);
    EXPECT_EQ(r == Result::kSat, reference.has_value()) << f.to_string();
    if (r == Result::kSat) {
      EXPECT_TRUE(f.satisfied_by(s.model())) << f.to_string();
    }
  }
  EXPECT_EQ(checked, 200);
}

/// Same formulas solved under random assumptions: verdicts must match the
/// brute force of (formula + assumption units), and UNSAT cores must be a
/// subset of the assumptions that is genuinely unsatisfiable.
TEST(SolverDifferential, AssumptionVerdictsAndCoresAreSound) {
  util::Rng rng(0xc0de5eed);
  int unsat_cores_checked = 0;
  for (int round = 0; round < 200; ++round) {
    const Var num_vars = static_cast<Var>(4 + rng.next_below(8));  // 4..11
    const std::size_t num_clauses =
        4 + rng.next_below(static_cast<std::uint64_t>(5 * num_vars));
    const CnfFormula f = random_cnf(num_vars, num_clauses, 3, rng);
    std::vector<Lit> assumptions;
    const std::size_t num_assumptions = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < num_assumptions; ++i) {
      assumptions.push_back(
          Lit(static_cast<Var>(rng.next_below(
                  static_cast<std::uint64_t>(num_vars))),
              rng.flip()));
    }
    CnfFormula with_units = f;
    for (const Lit a : assumptions) with_units.add_clause({a});
    const bool expected = brute_force_model(with_units).has_value();

    Solver s;
    if (!s.add_formula(f)) {
      EXPECT_FALSE(expected);
      continue;
    }
    const Result r = s.solve(assumptions);
    ASSERT_NE(r, Result::kUnknown);
    EXPECT_EQ(r == Result::kSat, expected) << with_units.to_string();
    if (r == Result::kSat) {
      const Assignment& m = s.model();
      EXPECT_TRUE(f.satisfied_by(m));
      for (const Lit a : assumptions) EXPECT_TRUE(m.value(a));
    } else {
      // Core \subseteq assumptions ...
      for (const Lit l : s.core()) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                  assumptions.end());
      }
      // ... and formula + core alone is UNSAT.
      CnfFormula with_core = f;
      for (const Lit l : s.core()) with_core.add_clause({l});
      EXPECT_FALSE(brute_force_model(with_core).has_value())
          << with_core.to_string();
      ++unsat_cores_checked;
    }
  }
  EXPECT_GT(unsat_cores_checked, 10);
}

/// Incremental use: clauses arrive in batches with solves in between;
/// the verdict after each batch must match brute force on the prefix.
TEST(SolverDifferential, IncrementalBatchesMatchBruteForce) {
  util::Rng rng(0xbadc0de1);
  for (int round = 0; round < 60; ++round) {
    const Var num_vars = static_cast<Var>(5 + rng.next_below(6));  // 5..10
    const CnfFormula all =
        random_cnf(num_vars, 10 + rng.next_below(30), 3, rng);
    Solver s;
    s.ensure_vars(num_vars);
    CnfFormula prefix(num_vars);
    bool solver_ok = true;
    for (std::size_t i = 0; i < all.num_clauses(); ++i) {
      prefix.add_clause(all.clause(i));
      if (solver_ok) solver_ok = s.add_clause(all.clause(i));
      if (i % 7 != 6) continue;  // solve every 7th clause
      const bool expected = brute_force_model(prefix).has_value();
      if (!solver_ok) {
        EXPECT_FALSE(expected);
        break;
      }
      const Result r = s.solve();
      EXPECT_EQ(r == Result::kSat, expected) << prefix.to_string();
      if (r == Result::kSat) {
        EXPECT_TRUE(prefix.satisfied_by(s.model()));
      }
    }
  }
}

/// Dense instances with long clauses, re-solved after the verdict: the
/// solver must stay internally consistent across repeated heavy solves.
TEST(SolverDifferential, DenseInstancesStayConsistent) {
  util::Rng rng(0x9e3779b9);
  int unsat = 0;
  for (int round = 0; round < 8; ++round) {
    const CnfFormula f = random_cnf(18, 130, 5, rng);
    const bool expected = brute_force_model(f).has_value();
    Solver s;
    if (!s.add_formula(f)) {
      EXPECT_FALSE(expected);
      continue;
    }
    const Result r = s.solve();
    EXPECT_EQ(r == Result::kSat, expected);
    if (r == Result::kSat) {
      EXPECT_TRUE(f.satisfied_by(s.model()));
    } else {
      ++unsat;
    }
    // The solver must stay usable after heavy learnt churn.
    EXPECT_EQ(s.solve() == Result::kSat, expected);
  }
  (void)unsat;
}

/// Inprocessing must not change verdicts or model validity: the same
/// random CNFs as the plain sweep, but simplified (subsumption + bounded
/// variable elimination + vivification) before solving and compacted
/// between solves. Models come back in external numbering, so validity is
/// checked against the *original* formula.
TEST(SolverDifferential, InprocessingAgreesOnRandomCnfs) {
  util::Rng rng(0x1337f00d);
  int inprocessed = 0;
  for (int round = 0; round < 150; ++round) {
    const Var num_vars = static_cast<Var>(4 + rng.next_below(9));  // 4..12
    const std::size_t num_clauses =
        3 + rng.next_below(static_cast<std::uint64_t>(6 * num_vars));
    const CnfFormula f = random_cnf(num_vars, num_clauses, 4, rng);
    const bool expected = brute_force_model(f).has_value();
    Solver s;
    if (!s.add_formula(f)) {
      EXPECT_FALSE(expected);
      continue;
    }
    if (!s.inprocess()) {
      // Root-level refutation during simplification is an UNSAT verdict.
      EXPECT_FALSE(expected) << f.to_string();
      EXPECT_EQ(s.solve(), Result::kUnsat);
      continue;
    }
    ++inprocessed;
    const Result r = s.solve();
    ASSERT_NE(r, Result::kUnknown);
    EXPECT_EQ(r == Result::kSat, expected) << f.to_string();
    if (r == Result::kSat) {
      EXPECT_TRUE(f.satisfied_by(s.model())) << f.to_string();
    }
    // Compacting the variable range must not change the verdict either,
    // and models must still be reported in the original numbering.
    s.compact();
    const Result r2 = s.solve();
    EXPECT_EQ(r2, r) << f.to_string();
    if (r2 == Result::kSat) {
      EXPECT_TRUE(f.satisfied_by(s.model())) << f.to_string();
    }
  }
  EXPECT_GT(inprocessed, 30);
}

/// Assumption solving after inprocessing: verdicts match brute force of
/// formula + assumption units, models satisfy the assumptions, and cores
/// are subsets of the assumptions (in original numbering) that are
/// genuinely unsatisfiable — even when the assumed variables were
/// eliminated or compacted away and had to be revived.
TEST(SolverDifferential, InprocessingAssumptionVerdictsAndCores) {
  util::Rng rng(0xd1ffe7e5);
  int unsat_cores_checked = 0;
  for (int round = 0; round < 150; ++round) {
    const Var num_vars = static_cast<Var>(4 + rng.next_below(8));  // 4..11
    const std::size_t num_clauses =
        4 + rng.next_below(static_cast<std::uint64_t>(5 * num_vars));
    const CnfFormula f = random_cnf(num_vars, num_clauses, 3, rng);
    std::vector<Lit> assumptions;
    const std::size_t num_assumptions = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < num_assumptions; ++i) {
      assumptions.push_back(
          Lit(static_cast<Var>(
                  rng.next_below(static_cast<std::uint64_t>(num_vars))),
              rng.flip()));
    }
    CnfFormula with_units = f;
    for (const Lit a : assumptions) with_units.add_clause({a});
    const bool expected = brute_force_model(with_units).has_value();

    Solver s;
    if (!s.add_formula(f)) {
      EXPECT_FALSE(expected);
      continue;
    }
    if (!s.inprocess()) {
      EXPECT_FALSE(expected) << with_units.to_string();
      continue;
    }
    if (round % 2 == 0) s.compact();
    const Result r = s.solve(assumptions);
    ASSERT_NE(r, Result::kUnknown);
    EXPECT_EQ(r == Result::kSat, expected) << with_units.to_string();
    if (r == Result::kSat) {
      const Assignment& m = s.model();
      EXPECT_TRUE(f.satisfied_by(m));
      for (const Lit a : assumptions) EXPECT_TRUE(m.value(a));
    } else {
      for (const Lit l : s.core()) {
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                  assumptions.end());
      }
      CnfFormula with_core = f;
      for (const Lit l : s.core()) with_core.add_clause({l});
      EXPECT_FALSE(brute_force_model(with_core).has_value())
          << with_core.to_string();
      ++unsat_cores_checked;
    }
  }
  EXPECT_GT(unsat_cores_checked, 10);
}

/// Incremental sessions with activation-literal retirement interleaved
/// with inprocessing + compaction rounds: after every step the verdict
/// under the live guards must match brute force over the permanent
/// clauses plus the bodies of the still-active guarded groups.
TEST(SolverDifferential, RetireInterleavedWithInprocessingRounds) {
  util::Rng rng(0xfeedbeef);
  const auto random_clause = [&rng](Var num_vars) {
    Clause c;
    const std::size_t width = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < width; ++k) {
      c.push_back(Lit(static_cast<Var>(rng.next_below(
                          static_cast<std::uint64_t>(num_vars))),
                      rng.flip()));
    }
    return c;
  };
  for (int round = 0; round < 40; ++round) {
    const Var num_vars = static_cast<Var>(6 + rng.next_below(5));  // 6..10
    Solver s;
    s.ensure_vars(num_vars);
    CnfFormula permanent(num_vars);
    std::vector<Lit> acts;
    std::vector<std::vector<Clause>> guarded;
    std::vector<bool> active;
    bool ok = true;
    for (int step = 0; step < 12 && ok; ++step) {
      const std::size_t perm = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < perm && ok; ++i) {
        const Clause c = random_clause(num_vars);
        permanent.add_clause(c);
        ok = s.add_clause(c);
      }
      if (ok) {
        const Lit act = cnf::pos(s.new_var());
        std::vector<Clause> group;
        const std::size_t width = 1 + rng.next_below(2);
        for (std::size_t i = 0; i < width; ++i) {
          const Clause c = random_clause(num_vars);
          s.add_clause_activated(c, act);
          group.push_back(c);
        }
        acts.push_back(act);
        guarded.push_back(std::move(group));
        active.push_back(true);
      }
      if (ok && rng.flip() && !acts.empty()) {
        const std::size_t i = rng.next_below(acts.size());
        if (active[i]) {
          s.retire({acts[i]});
          active[i] = false;
        }
      }
      if (ok && rng.flip()) {
        ok = s.inprocess();
        if (ok && rng.flip()) s.compact();
      }
      // Reference: permanent clauses plus every active group's bodies.
      CnfFormula reference = permanent;
      for (std::size_t i = 0; i < guarded.size(); ++i) {
        if (!active[i]) continue;
        for (const Clause& c : guarded[i]) reference.add_clause(c);
      }
      const bool expected = brute_force_model(reference).has_value();
      if (!ok) {
        // Loading or simplification refuted the permanent part.
        EXPECT_FALSE(brute_force_model(permanent).has_value());
        break;
      }
      std::vector<Lit> assumptions;
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (active[i]) assumptions.push_back(acts[i]);
      }
      const Result r = s.solve(assumptions);
      ASSERT_NE(r, Result::kUnknown);
      EXPECT_EQ(r == Result::kSat, expected) << reference.to_string();
      if (r == Result::kSat) {
        EXPECT_TRUE(reference.satisfied_by(s.model()))
            << reference.to_string();
      } else {
        for (const Lit l : s.core()) {
          EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                    assumptions.end());
        }
      }
    }
  }
}

}  // namespace
}  // namespace manthan::sat
