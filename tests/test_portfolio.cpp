// Portfolio runner and analytics: solved semantics, VBS, scatter and
// count computations.
#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/tables.hpp"

namespace manthan::portfolio {
namespace {

RunRecord make_record(const std::string& instance, EngineKind engine,
                      core::SynthesisStatus status, bool certified,
                      double seconds) {
  RunRecord r;
  r.instance = instance;
  r.family = "test";
  r.engine = engine;
  r.status = status;
  r.certified = certified;
  r.seconds = seconds;
  return r;
}

TEST(RunRecord, SolvedRequiresCertification) {
  EXPECT_TRUE(make_record("a", EngineKind::kManthan3,
                          core::SynthesisStatus::kRealizable, true, 1.0)
                  .solved());
  EXPECT_FALSE(make_record("a", EngineKind::kManthan3,
                           core::SynthesisStatus::kRealizable, false, 1.0)
                   .solved());
  EXPECT_FALSE(make_record("a", EngineKind::kManthan3,
                           core::SynthesisStatus::kUnrealizable, false, 1.0)
                   .solved());
}

TEST(Analytics, VbsCactusSeries) {
  std::vector<RunRecord> records{
      make_record("i1", EngineKind::kManthan3,
                  core::SynthesisStatus::kRealizable, true, 3.0),
      make_record("i1", EngineKind::kHqsLite,
                  core::SynthesisStatus::kRealizable, true, 1.0),
      make_record("i2", EngineKind::kManthan3,
                  core::SynthesisStatus::kRealizable, true, 2.0),
      make_record("i2", EngineKind::kHqsLite,
                  core::SynthesisStatus::kTimeout, false, 5.0),
      make_record("i3", EngineKind::kManthan3,
                  core::SynthesisStatus::kIncomplete, false, 0.2),
      make_record("i3", EngineKind::kHqsLite,
                  core::SynthesisStatus::kTimeout, false, 5.0),
  };
  const auto both = vbs_cactus_series(
      records, {EngineKind::kManthan3, EngineKind::kHqsLite});
  EXPECT_EQ(both, (std::vector<double>{1.0, 2.0}));
  const auto hqs_only = vbs_cactus_series(records, {EngineKind::kHqsLite});
  EXPECT_EQ(hqs_only, (std::vector<double>{1.0}));
}

TEST(Analytics, ScatterMarksTimeouts) {
  std::vector<RunRecord> records{
      make_record("i1", EngineKind::kManthan3,
                  core::SynthesisStatus::kRealizable, true, 0.5),
      make_record("i1", EngineKind::kPedantLite,
                  core::SynthesisStatus::kLimit, false, 5.0),
  };
  const auto points = scatter_points(records, {EngineKind::kPedantLite},
                                     {EngineKind::kManthan3}, 100.0);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].x_seconds, 100.0);
  EXPECT_EQ(points[0].y_seconds, 0.5);
}

TEST(Analytics, SolvedCountsHeadlineNumbers) {
  // i1: all solve; i2: only Manthan3; i3: only HQS (Manthan3 incomplete);
  // i4: nobody.
  std::vector<RunRecord> records{
      make_record("i1", EngineKind::kManthan3,
                  core::SynthesisStatus::kRealizable, true, 2.0),
      make_record("i1", EngineKind::kHqsLite,
                  core::SynthesisStatus::kRealizable, true, 1.0),
      make_record("i1", EngineKind::kPedantLite,
                  core::SynthesisStatus::kRealizable, true, 3.0),
      make_record("i2", EngineKind::kManthan3,
                  core::SynthesisStatus::kRealizable, true, 1.0),
      make_record("i2", EngineKind::kHqsLite,
                  core::SynthesisStatus::kLimit, false, 5.0),
      make_record("i2", EngineKind::kPedantLite,
                  core::SynthesisStatus::kTimeout, false, 5.0),
      make_record("i3", EngineKind::kManthan3,
                  core::SynthesisStatus::kIncomplete, false, 0.1),
      make_record("i3", EngineKind::kHqsLite,
                  core::SynthesisStatus::kRealizable, true, 0.4),
      make_record("i3", EngineKind::kPedantLite,
                  core::SynthesisStatus::kLimit, false, 5.0),
      make_record("i4", EngineKind::kManthan3,
                  core::SynthesisStatus::kTimeout, false, 5.0),
      make_record("i4", EngineKind::kHqsLite,
                  core::SynthesisStatus::kTimeout, false, 5.0),
      make_record("i4", EngineKind::kPedantLite,
                  core::SynthesisStatus::kTimeout, false, 5.0),
  };
  const SolvedCounts c = compute_solved_counts(records);
  EXPECT_EQ(c.total_instances, 4u);
  EXPECT_EQ(c.solved_manthan3, 2u);
  EXPECT_EQ(c.solved_hqs, 2u);
  EXPECT_EQ(c.solved_pedant, 1u);
  EXPECT_EQ(c.vbs_without_manthan3, 2u);
  EXPECT_EQ(c.vbs_with_manthan3, 3u);
  EXPECT_EQ(c.manthan3_unique, 1u);
  EXPECT_EQ(c.manthan3_fastest, 1u);  // i2 (on i1 HQS is faster)
  EXPECT_EQ(c.others_not_manthan3, 1u);
  EXPECT_EQ(c.manthan3_incomplete, 1u);
  EXPECT_EQ(c.manthan3_timeout, 0u);
}

TEST(Runner, RunsPaperExampleWithAllEngines) {
  workloads::Instance instance;
  instance.name = "paper_example";
  instance.family = "manual";
  instance.formula = testutil::paper_example();

  RunnerOptions options;
  options.per_instance_seconds = 20.0;
  Runner runner(options);
  const std::vector<RunRecord> records = runner.run_suite(
      {instance}, {EngineKind::kManthan3, EngineKind::kHqsLite,
                   EngineKind::kPedantLite});
  ASSERT_EQ(records.size(), 3u);
  for (const RunRecord& r : records) {
    EXPECT_TRUE(r.solved()) << engine_name(r.engine) << " status "
                            << status_name(r.status);
    EXPECT_GT(r.seconds, 0.0);
  }
}

TEST(Runner, ParallelSuiteMatchesSerialAtFixedSeed) {
  // The determinism contract: every (instance, engine) job derives its
  // RNG stream from (suite seed, instance name, engine) only, so the
  // parallel fan-out must reproduce the serial records field for field
  // (timing aside) — including Manthan3's sample/repair counters, which
  // depend on every random draw.
  std::vector<workloads::Instance> suite;
  suite.push_back({"planted_a", "planted",
                   workloads::gen_planted({8, 4, 3, 5, 30, 11})});
  suite.push_back({"planted_b", "planted",
                   workloads::gen_planted({10, 5, 4, 6, 40, 12})});
  suite.push_back({"pec", "pec", workloads::gen_pec({8, 2, 2, 3, 12, 5})});
  suite.push_back({"succinct", "succinct_sat",
                   workloads::gen_succinct_sat({16, 3.2, 7})});
  const std::vector<EngineKind> engines{
      EngineKind::kManthan3, EngineKind::kHqsLite, EngineKind::kPedantLite};

  RunnerOptions options;
  options.per_instance_seconds = 60.0;  // comfortable: no timing-dependent paths
  options.seed = 2024;
  const Runner runner(options);
  const std::vector<RunRecord> serial = runner.run_suite(suite, engines);
  const std::vector<RunRecord> parallel =
      runner.run_suite(suite, engines, ParallelOptions{4});

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].instance, parallel[i].instance) << i;
    EXPECT_EQ(serial[i].family, parallel[i].family) << i;
    EXPECT_EQ(serial[i].engine, parallel[i].engine) << i;
    EXPECT_EQ(serial[i].status, parallel[i].status)
        << serial[i].instance << " / " << engine_name(serial[i].engine);
    EXPECT_EQ(serial[i].certified, parallel[i].certified) << i;
    EXPECT_EQ(serial[i].stats.samples, parallel[i].stats.samples) << i;
    EXPECT_EQ(serial[i].stats.counterexamples,
              parallel[i].stats.counterexamples)
        << i;
    EXPECT_EQ(serial[i].stats.repairs, parallel[i].stats.repairs) << i;
  }
}

TEST(Runner, ParallelSuiteHandlesEmptyInput) {
  const Runner runner;
  EXPECT_TRUE(runner.run_suite({}, {}, ParallelOptions{2}).empty());
  EXPECT_TRUE(
      runner
          .run_suite({}, {EngineKind::kManthan3}, ParallelOptions{0})
          .empty());
}

TEST(Tables, CactusOutputWellFormed) {
  std::ostringstream os;
  print_cactus(os, {"A", "B"}, {{0.5, 1.5}, {0.25}});
  const std::string text = os.str();
  EXPECT_NE(text.find("A=2"), std::string::npos);
  EXPECT_NE(text.find("B=1"), std::string::npos);
}

TEST(Tables, ScatterSummarizesWins) {
  std::ostringstream os;
  print_scatter(os, "X", "Y",
                {{"i1", 1.0, 2.0}, {"i2", 100.0, 3.0}}, 100.0);
  const std::string text = os.str();
  EXPECT_NE(text.find("X faster on 1"), std::string::npos);
  EXPECT_NE(text.find("exclusive 1"), std::string::npos);
}

TEST(Tables, SolvedCountsRendering) {
  SolvedCounts c;
  c.total_instances = 10;
  c.vbs_with_manthan3 = 7;
  c.vbs_without_manthan3 = 5;
  std::ostringstream os;
  print_solved_counts(os, c);
  EXPECT_NE(os.str().find("VBS improvement by Manthan3:     2"),
            std::string::npos);
}

TEST(Tables, EngineAndStatusNames) {
  EXPECT_STREQ(engine_name(EngineKind::kManthan3), "Manthan3");
  EXPECT_STREQ(engine_name(EngineKind::kHqsLite), "HqsLite");
  EXPECT_STREQ(engine_name(EngineKind::kPedantLite), "PedantLite");
  EXPECT_STREQ(status_name(core::SynthesisStatus::kRealizable),
               "realizable");
  EXPECT_STREQ(status_name(core::SynthesisStatus::kIncomplete),
               "incomplete");
}

}  // namespace
}  // namespace manthan::portfolio
